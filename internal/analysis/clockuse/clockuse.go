// Package clockuse bans raw clock access where it can silently break
// test determinism: in packages instrumented with internal/telemetry
// (they import it directly), span timings are made deterministic by the
// virtual clock (telemetry.NewVirtualClock) and backoff sleeps by the
// injectable Sleep seams (engine.Policy.Sleep, core.FaultyCheck.Sleep).
// A raw time.Sleep or a test reading time.Now bypasses those seams and
// reintroduces wall-clock flakiness that -race and CI latch onto weeks
// later.
//
// The contract, per file kind:
//
//   - *_test.go files of an instrumented package must not reference
//     time.Now, time.Sleep, time.After, time.Tick, time.NewTicker or
//     time.NewTimer — tests drive virtual time through the clock and
//     sleep seams instead.
//   - non-test files must not reference time.Sleep, time.Tick or
//     time.NewTicker: production sleeps go through an injectable seam so
//     schedulers and tests can virtualise them, and periodic work is
//     caller-cadenced (fleet.Streamer.Flush takes the instant as an
//     argument) so the same code runs on virtual and real time.
//     (time.Now stays legal outside tests: wall-clock measurement is
//     exactly what RunStats/FleetStats exist to report. time.NewTimer
//     also stays legal: a ctx-cancellable one-shot timer, as in
//     core.FaultyCheck's retry backoff, has no seam to bypass.)
//
// Daemon entrypoints are the sanctioned exception to the ticker ban: a
// long-running serve loop (cmd/vdo-serve) is wall-clock cadenced by
// design, and records that design decision as a //lint:ignore clockuse
// suppression with the reason inline.
//
// The seam definitions themselves ("nil means time.Sleep") carry a
// //lint:ignore clockuse directive — they are the one place the real
// clock is allowed to appear. Tests that genuinely measure the real
// clock (pool busy-time accounting, deadlock watchdogs, race-window
// widening) suppress the same way, with the justification on record.
//
// Known limits: the ban is syntactic over the instrumented package's own
// files; a helper package without the telemetry import can still sleep
// on behalf of an instrumented caller.
package clockuse

import (
	"go/ast"
	"go/types"

	"veridevops/internal/analysis"
)

// bannedInTests are the time package members tests of instrumented
// packages may not reference; bannedAlways is the subset that is also
// banned in non-test files.
var (
	bannedInTests = map[string]bool{
		"Now": true, "Sleep": true, "After": true,
		"Tick": true, "NewTicker": true, "NewTimer": true,
	}
	bannedAlways = map[string]bool{"Sleep": true, "Tick": true, "NewTicker": true}
)

// Analyzer is the clockuse pass.
var Analyzer = &analysis.Analyzer{
	Name: "clockuse",
	Doc:  "ban raw time.Now/time.Sleep in telemetry-instrumented packages and their tests in favor of the virtual clock and sleep seams",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.ImportsPath(pass.Files, analysis.TelemetryPath) {
		return nil, nil
	}
	for _, f := range pass.Files {
		banned := bannedAlways
		where := "telemetry-instrumented package"
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			banned = bannedInTests
			where = "test of a telemetry-instrumented package"
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in a %s: use the virtual clock (telemetry.NewVirtualClock) or an injected Sleep seam",
				fn.Name(), where)
			return true
		})
	}
	return nil, nil
}
