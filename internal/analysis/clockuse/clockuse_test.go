package clockuse_test

import (
	"testing"

	"veridevops/internal/analysis/analysistest"
	"veridevops/internal/analysis/clockuse"
)

func TestClockuse(t *testing.T) {
	analysistest.Run(t, clockuse.Analyzer, "testdata/src/a", "a")
}
