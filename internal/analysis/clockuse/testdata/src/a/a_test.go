// Fixture for the clockuse analyzer, test file: tests of an
// instrumented package must drive virtual time, so the whole raw clock
// surface is banned here.
package a

import (
	"io"
	"testing"
	"time"

	"veridevops/internal/telemetry"
)

// TestVirtual is the clean shape: the tracer runs on a virtual clock
// and the worker's sleep seam is replaced with an accumulator.
func TestVirtual(t *testing.T) {
	var slept time.Duration
	w := &Worker{
		Tracer: telemetry.New(io.Discard, telemetry.WithClock(telemetry.NewVirtualClock(time.Millisecond))),
		Sleep:  func(d time.Duration) { slept += d },
	}
	w.Sleep(5 * time.Millisecond)
	if slept != 5*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
}

// TestWallClock is flagged on every raw clock reference.
func TestWallClock(t *testing.T) {
	start := time.Now()            // want `time.Now in a test of a telemetry-instrumented package`
	time.Sleep(time.Microsecond)   // want `time.Sleep in a test of a telemetry-instrumented package`
	<-time.After(time.Microsecond) // want `time.After in a test of a telemetry-instrumented package`
	if time.Since(start) == 0 {
		t.Fatal("clock did not advance")
	}
}

// TestJustified measures the real clock on purpose, with the reason on
// record.
func TestJustified(t *testing.T) {
	//lint:ignore clockuse this test measures real scheduler latency, not span timing
	start := time.Now()
	_ = start
}
