// Fixture for the clockuse analyzer, non-test file: the package is
// telemetry-instrumented (it imports internal/telemetry), so time.Sleep
// is banned here while time.Now stays legal for wall-clock measurement.
package a

import (
	"io"
	"time"

	"veridevops/internal/telemetry"
)

// Worker carries an injectable sleep seam, the sanctioned pattern.
type Worker struct {
	Tracer *telemetry.Tracer
	Sleep  func(time.Duration)
}

// NewWorker wires the seam default; the one legal reference to
// time.Sleep in production code carries a recorded justification.
func NewWorker(w io.Writer) *Worker {
	return &Worker{
		Tracer: telemetry.New(w),
		//lint:ignore clockuse seam default: tests replace Sleep with a virtual clock
		Sleep: time.Sleep,
	}
}

// Measure legally reads the wall clock outside tests.
func (wk *Worker) Measure() time.Duration {
	start := time.Now()
	wk.Sleep(time.Millisecond)
	return time.Since(start)
}

// Nap is flagged: a raw sleep in instrumented production code bypasses
// the seam.
func Nap() {
	time.Sleep(time.Millisecond) // want `time.Sleep in a telemetry-instrumented package`
}

// Poll is flagged on both ticker constructors: periodic work must be
// caller-cadenced (the owner passes the instant in) so the same loop
// runs on virtual and real time.
func Poll(stop <-chan struct{}) {
	tk := time.NewTicker(time.Second) // want `time.NewTicker in a telemetry-instrumented package`
	defer tk.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tk.C:
		case <-time.Tick(time.Minute): // want `time.Tick in a telemetry-instrumented package`
		}
	}
}

// Serve is the sanctioned daemon shape: a wall-clock ticker in a
// long-running entrypoint, with the design decision on record. The
// ctx-cancellable one-shot NewTimer below is legal without a directive.
func Serve(stop <-chan struct{}) {
	//lint:ignore clockuse the serve loop is wall-clock cadenced by design; determinism lives with virtual-clock callers
	tk := time.NewTicker(time.Second)
	defer tk.Stop()
	deadline := time.NewTimer(time.Hour)
	defer deadline.Stop()
	for {
		select {
		case <-stop:
			return
		case <-deadline.C:
			return
		case <-tk.C:
		}
	}
}
