package analysis

// Read-effect summaries: bounded interprocedural support for analyzers
// that reason about which host-state slots a function reads. The
// Summarizer computes, per function, the set of host accessor calls the
// function transitively performs — `host.Linux.Installed(name)`,
// `host.Windows.GetAudit(sub)`, … — with one-level-per-edge constant
// propagation of the key arguments, generalizing reqmeta's call-site
// propagation: at each intra-package call edge, parameter references in
// the callee's summary are substituted with the caller's argument terms
// and receiver-field paths are re-rooted through the caller's receiver
// expression, so helper-method indirection does not blind the analyzer.
//
// A summarized read is a symbolic key term: a Kind (host.KeyPackage &c.)
// plus a sequence of Parts, each a constant string, a field path rooted
// at the summarized function's receiver, a parameter placeholder, or
// opaque. Whole-inventory accessors (Packages, Subcategories) and calls
// the summarizer cannot follow (function values, out-of-package helpers
// that receive a host) surface as Whole/Opaque reads so clients can
// degrade to warnings instead of silently missing state access.
//
// Soundness boundary: host state is only reachable through host-typed
// values (*host.Linux, *host.Windows, host.AuditPol), so unknown calls
// that receive no host-typed value are assumed read-free. Function
// values that close over a host are the one hole; the dynamic
// ReadRecorder oracle covers it.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Key kinds, mirroring the host.Key* constants (internal/host/eventlog.go).
const (
	KindPackage  = "pkg"
	KindService  = "svc"
	KindConfig   = "cfg"
	KindAudit    = "audit"
	KindRegistry = "reg"
	KindNet      = "net"
)

// KnownKinds is the set of valid StateKey kinds.
var KnownKinds = map[string]bool{
	KindPackage: true, KindService: true, KindConfig: true,
	KindAudit: true, KindRegistry: true, KindNet: true,
}

// Part is one symbolic component of a key term.
type Part struct {
	// Const is the literal text when the part is a resolved constant
	// (Param < 0, Fields empty, !Opaque).
	Const string
	// Fields is a field path: rooted at the summarized function's
	// receiver when Param < 0, or at the Param-th flattened parameter
	// otherwise. Compared by field-object identity, which is shared
	// across all methods of the type.
	Fields []*types.Var
	// Param is the flattened parameter index of the summarized function
	// the value flows from, or -1.
	Param int
	// Opaque marks a value the summarizer could not resolve.
	Opaque bool
}

// ConstPart builds a resolved constant part.
func ConstPart(s string) Part { return Part{Const: s, Param: -1} }

// OpaquePart is the unresolvable part.
func OpaquePart() Part { return Part{Param: -1, Opaque: true} }

// Resolved reports whether the part is a provable value: a constant or
// a receiver-field path (field values are fixed for a given receiver, so
// they can be matched against the same path in CheckStateKeys).
func (p Part) Resolved() bool { return !p.Opaque && p.Param < 0 }

// Equal compares parts structurally; field paths compare by object
// identity.
func (p Part) Equal(q Part) bool {
	if p.Opaque != q.Opaque || p.Param != q.Param || p.Const != q.Const || len(p.Fields) != len(q.Fields) {
		return false
	}
	for i := range p.Fields {
		if p.Fields[i] != q.Fields[i] {
			return false
		}
	}
	return true
}

func (p Part) String() string {
	switch {
	case p.Opaque:
		return "<?>"
	case p.Param >= 0 && len(p.Fields) > 0:
		return fmt.Sprintf("<arg%d.%s>", p.Param, fieldPath(p.Fields))
	case p.Param >= 0:
		return fmt.Sprintf("<arg%d>", p.Param)
	case len(p.Fields) > 0:
		return "<." + fieldPath(p.Fields) + ">"
	default:
		return p.Const
	}
}

func fieldPath(fields []*types.Var) string {
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.Name()
	}
	return strings.Join(names, ".")
}

// Read is one summarized host-state access (or one declared key term,
// when built by clients from CheckStateKeys).
type Read struct {
	Kind  string
	Parts []Part
	// Whole marks a whole-inventory access (Packages, Subcategories)
	// that no per-key declaration can cover.
	Whole bool
	// Opaque marks a call that may read host state but could not be
	// summarized.
	Opaque bool
	// Pos is the call position in the outermost summarized function.
	Pos token.Pos
	// Path is the call chain from the summarized function to the access,
	// e.g. "CheckCtx → requireInstalled", empty for direct accesses.
	Path string
}

// Resolved reports whether every part of the term is provable and the
// read is neither whole-inventory nor opaque.
func (r Read) Resolved() bool {
	if r.Whole || r.Opaque {
		return false
	}
	for _, p := range r.Parts {
		if !p.Resolved() {
			return false
		}
	}
	return true
}

// Key renders the term in StateKey notation ("pkg:<.PackageName>",
// "cfg:/etc/ssh/sshd_config:PermitRootLogin") for diagnostics.
func (r Read) Key() string {
	if r.Whole {
		return r.Kind + ":*"
	}
	if r.Opaque && len(r.Parts) == 0 {
		return r.Kind + ":<?>"
	}
	var b strings.Builder
	b.WriteString(r.Kind)
	b.WriteString(":")
	for _, p := range r.Parts {
		b.WriteString(p.String())
	}
	return b.String()
}

// Matches reports whether two resolved terms denote the same key: same
// kind and structurally equal normalized parts.
func (r Read) Matches(d Read) bool {
	if r.Kind != d.Kind || r.Whole != d.Whole {
		return false
	}
	a, b := NormalizeParts(r.Parts), NormalizeParts(d.Parts)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// NormalizeParts merges adjacent constant parts and drops empty
// constants, so "a"+"b" and "ab" compare equal.
func NormalizeParts(parts []Part) []Part {
	var out []Part
	for _, p := range parts {
		if p.Resolved() && len(p.Fields) == 0 {
			if p.Const == "" {
				continue
			}
			if n := len(out); n > 0 && out[n-1].Resolved() && len(out[n-1].Fields) == 0 {
				out[n-1].Const += p.Const
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

// Summary is the read-effect set of one function, in that function's own
// frame: parts may reference its receiver fields and parameters.
type Summary struct {
	Reads []Read
}

// maxSummaryDepth bounds the intra-package call-graph walk; chains
// deeper than this (and cycles) summarize as opaque.
const maxSummaryDepth = 8

// accessorSpec describes one host read accessor: the receiver type name
// in internal/host, the key kind, and which flattened argument indices
// form the key (joined with ":" for multi-part keys like cfg). whole
// marks inventory accessors.
type accessorSpec struct {
	recv  string
	kind  string
	args  []int
	whole bool
}

// hostAccessors maps method name → candidate specs (names are unique
// across host types today, but keep a slice for safety).
var hostAccessors = map[string][]accessorSpec{
	"Installed":        {{recv: "Linux", kind: KindPackage, args: []int{0}}},
	"InstalledCtx":     {{recv: "Linux", kind: KindPackage, args: []int{1}}},
	"Version":          {{recv: "Linux", kind: KindPackage, args: []int{0}}},
	"Packages":         {{recv: "Linux", kind: KindPackage, whole: true}},
	"ServiceActive":    {{recv: "Linux", kind: KindService, args: []int{0}}},
	"ServiceActiveCtx": {{recv: "Linux", kind: KindService, args: []int{1}}},
	"Config":           {{recv: "Linux", kind: KindConfig, args: []int{0, 1}}},
	"ConfigCtx":        {{recv: "Linux", kind: KindConfig, args: []int{1, 2}}},
	"GetAudit":         {{recv: "Windows", kind: KindAudit, args: []int{0}}},
	"Subcategories":    {{recv: "Windows", kind: KindAudit, whole: true}},
	"Registry":         {{recv: "Windows", kind: KindRegistry, args: []int{0}}},
}

// hostTypeNames are the named types through which host state is
// reachable; a call is only suspicious when one of these flows into it.
var hostTypeNames = []string{"Linux", "Windows", "AuditPol"}

// Frame is the symbolic evaluation context of one function: its receiver
// object and the flattened index of each named parameter.
type Frame struct {
	Recv   types.Object
	Params map[types.Object]int
}

// NewFrame builds the frame of a declared function.
func NewFrame(info *types.Info, fd *ast.FuncDecl) *Frame {
	fr := &Frame{Params: map[types.Object]int{}}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		fr.Recv = info.Defs[fd.Recv.List[0].Names[0]]
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				fr.Params[obj] = i
			}
			i++
		}
	}
	return fr
}

// Summarizer computes memoized bottom-up read-effect summaries over the
// intra-package call graph of one pass.
type Summarizer struct {
	pass   *Pass
	decls  map[*types.Func]*ast.FuncDecl
	cache  map[*types.Func]*Summary
	active map[*types.Func]bool
}

// NewSummarizer indexes the function declarations of the pass's non-test
// files. Test-file helpers are invisible: production checks cannot call
// them, and test-only checks are out of scope.
func NewSummarizer(pass *Pass) *Summarizer {
	s := &Summarizer{
		pass:   pass,
		decls:  map[*types.Func]*ast.FuncDecl{},
		cache:  map[*types.Func]*Summary{},
		active: map[*types.Func]bool{},
	}
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				s.decls[fn] = fd
			}
		}
	}
	return s
}

// Decl returns the indexed declaration of fn, nil when fn is not a
// non-test function of this package.
func (s *Summarizer) Decl(fn *types.Func) *ast.FuncDecl { return s.decls[fn] }

// Summarize returns fn's read-effect summary in fn's own frame. Unknown
// functions summarize as empty (the host-typed-value heuristic at call
// sites covers them).
func (s *Summarizer) Summarize(fn *types.Func) *Summary {
	if sum, ok := s.cache[fn]; ok {
		return sum
	}
	fd := s.decls[fn]
	if fd == nil {
		return &Summary{}
	}
	if s.active[fn] || len(s.active) >= maxSummaryDepth {
		// Cycle or depth blowout: this frame may read anything.
		return &Summary{Reads: []Read{{Opaque: true, Pos: fd.Pos(), Path: fn.Name()}}}
	}
	s.active[fn] = true
	sum := &Summary{}
	fr := NewFrame(s.pass.TypesInfo, fd)
	// Walk the whole body including FuncLits and defers: a deferred
	// closure's reads happen during the call, in the same frame.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			s.call(call, fr, sum)
		}
		return true
	})
	delete(s.active, fn)
	s.cache[fn] = sum
	return sum
}

// call summarizes one call expression into out, in the caller frame fr.
func (s *Summarizer) call(call *ast.CallExpr, fr *Frame, out *Summary) {
	callee := CalleeFunc(s.pass.TypesInfo, call)
	if callee == nil {
		// Function value, interface method, conversion or builtin. Only
		// suspicious when a host-typed value flows in.
		if s.hostValueFlows(call) {
			out.Reads = append(out.Reads, Read{Opaque: true, Pos: call.Pos()})
		}
		return
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == HostPath {
		s.hostCall(call, callee, fr, out)
		return
	}
	if callee.Pkg() == s.pass.Pkg {
		if inner := s.decls[callee]; inner != nil {
			s.inline(call, callee, fr, out)
			return
		}
	}
	// Out-of-package (or test-file) function: suspicious only if it
	// receives a host-typed value.
	if s.hostValueFlows(call) {
		out.Reads = append(out.Reads, Read{Opaque: true, Pos: call.Pos()})
	}
}

// hostCall maps a call to an internal/host function onto reads. Mutators
// and non-state accessors (Log, Category, ParseSetting, key
// constructors) contribute nothing.
func (s *Summarizer) hostCall(call *ast.CallExpr, callee *types.Func, fr *Frame, out *Summary) {
	recv := callee.Type().(*types.Signature).Recv()
	if recv == nil {
		return // package-level host func (NewUbuntu1804, ParseSetting, …): no reads
	}
	if NamedTypeIs(recv.Type(), HostPath, "AuditPol") && callee.Name() == "Run" {
		out.Reads = append(out.Reads, s.auditPolRun(call, fr))
		return
	}
	for _, spec := range hostAccessors[callee.Name()] {
		if !NamedTypeIs(recv.Type(), HostPath, spec.recv) {
			continue
		}
		if spec.whole {
			out.Reads = append(out.Reads, Read{Kind: spec.kind, Whole: true, Pos: call.Pos()})
			return
		}
		r := Read{Kind: spec.kind, Pos: call.Pos()}
		for i, argIdx := range spec.args {
			if i > 0 {
				r.Parts = append(r.Parts, ConstPart(":"))
			}
			if argIdx < len(call.Args) {
				r.Parts = append(r.Parts, s.ExprTerm(call.Args[argIdx], fr)...)
			} else {
				r.Parts = append(r.Parts, OpaquePart())
			}
		}
		r.Parts = NormalizeParts(r.Parts)
		out.Reads = append(out.Reads, r)
		return
	}
}

// auditPolRun models host.AuditPol.Run: "/get" with a
// "/subcategory:<name>" argument reads that audit slot (auditpol parses
// the flag and calls Windows.GetAudit); "/set" reads-then-writes the
// same slot. The subcategory argument is recognized as a constant
// "/subcategory:..." string or a fmt.Sprintf("/subcategory:%q|%s", x)
// call; anything else is an opaque audit read.
func (s *Summarizer) auditPolRun(call *ast.CallExpr, fr *Frame) Read {
	r := Read{Kind: KindAudit, Pos: call.Pos()}
	for _, arg := range call.Args {
		if c, ok := s.constString(arg); ok {
			if rest, found := strings.CutPrefix(c, "/subcategory:"); found {
				r.Parts = []Part{ConstPart(strings.Trim(rest, `"`))}
				return r
			}
			continue
		}
		if sub, ok := s.sprintfSubcategory(arg, fr); ok {
			r.Parts = NormalizeParts(sub)
			return r
		}
	}
	r.Opaque = true
	return r
}

// sprintfSubcategory matches fmt.Sprintf("/subcategory:%q", x) (or %s)
// and returns the term of x. %q quoting is transparent: auditpol's
// argValue trims quotes before lookup, so the key name is x either way.
func (s *Summarizer) sprintfSubcategory(e ast.Expr, fr *Frame) ([]Part, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !IsPkgFunc(s.pass.TypesInfo, call, "fmt", "Sprintf") || len(call.Args) != 2 {
		return nil, false
	}
	format, ok := s.constString(call.Args[0])
	if !ok || (format != "/subcategory:%q" && format != "/subcategory:%s") {
		return nil, false
	}
	return s.ExprTerm(call.Args[1], fr), true
}

// inline substitutes callee's summary into the caller frame at one call
// site: parameter placeholders become the argument terms, and
// receiver-field paths are re-rooted through the call's receiver
// expression.
func (s *Summarizer) inline(call *ast.CallExpr, callee *types.Func, fr *Frame, out *Summary) {
	sub := s.Summarize(callee)
	if len(sub.Reads) == 0 {
		return
	}
	recvTerm := s.CallRecvTerm(call, fr)
	for _, r := range sub.Reads {
		nr := Read{Kind: r.Kind, Whole: r.Whole, Opaque: r.Opaque, Pos: call.Pos(), Path: joinPath(callee.Name(), r.Path)}
		for _, p := range r.Parts {
			nr.Parts = append(nr.Parts, s.SubstituteAtCall(p, call, recvTerm, fr)...)
		}
		nr.Parts = NormalizeParts(nr.Parts)
		out.Reads = append(out.Reads, nr)
	}
}

// CallRecvTerm resolves the receiver expression of a method call to a
// single rootable part in the caller frame, nil when the call has no
// receiver or the receiver does not resolve.
func (s *Summarizer) CallRecvTerm(call *ast.CallExpr, fr *Frame) *Part {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	callee := CalleeFunc(s.pass.TypesInfo, call)
	if callee == nil || callee.Type().(*types.Signature).Recv() == nil {
		return nil
	}
	t := s.ExprTerm(sel.X, fr)
	if len(t) != 1 {
		return nil
	}
	return &t[0]
}

func joinPath(name, rest string) string {
	if rest == "" {
		return name
	}
	return name + " → " + rest
}

// SubstituteAtCall maps one callee-frame part into the caller frame at
// one call site: parameter placeholders become the argument terms,
// receiver-rooted field paths are re-rooted through recvTerm.
func (s *Summarizer) SubstituteAtCall(p Part, call *ast.CallExpr, recvTerm *Part, fr *Frame) []Part {
	switch {
	case p.Opaque:
		return []Part{OpaquePart()}
	case p.Param >= 0:
		if p.Param >= len(call.Args) {
			return []Part{OpaquePart()}
		}
		arg := s.ExprTerm(call.Args[p.Param], fr)
		if len(p.Fields) == 0 {
			return arg
		}
		// Param-rooted field path: the argument term must itself be a
		// single rootable part to append the path onto.
		if len(arg) == 1 && !arg[0].Opaque && arg[0].Const == "" {
			root := arg[0]
			root.Fields = append(append([]*types.Var{}, root.Fields...), p.Fields...)
			return []Part{root}
		}
		return []Part{OpaquePart()}
	case len(p.Fields) > 0:
		// Callee-receiver-rooted path: re-root through the caller's
		// receiver expression.
		if recvTerm == nil || recvTerm.Opaque || recvTerm.Const != "" {
			return []Part{OpaquePart()}
		}
		root := *recvTerm
		root.Fields = append(append([]*types.Var{}, root.Fields...), p.Fields...)
		return []Part{root}
	default:
		return []Part{p}
	}
}

// ExprTerm evaluates an expression to its symbolic parts in frame fr:
// constant folding, string concatenation, parameter references and
// receiver/parameter-rooted field paths; anything else is opaque.
func (s *Summarizer) ExprTerm(e ast.Expr, fr *Frame) []Part {
	e = ast.Unparen(e)
	if c, ok := s.constString(e); ok {
		return []Part{ConstPart(c)}
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return NormalizeParts(append(s.ExprTerm(x.X, fr), s.ExprTerm(x.Y, fr)...))
		}
	case *ast.Ident:
		obj := s.pass.TypesInfo.Uses[x]
		if obj == nil {
			break
		}
		if fr != nil && obj == fr.Recv && fr.Recv != nil {
			return []Part{{Param: -1}} // the receiver itself: empty field path
		}
		if fr != nil {
			if idx, ok := fr.Params[obj]; ok {
				return []Part{{Param: idx}}
			}
		}
	case *ast.SelectorExpr:
		if path, ok := s.fieldPathTerm(x, fr); ok {
			return []Part{path}
		}
	}
	return []Part{OpaquePart()}
}

// fieldPathTerm resolves expr as a chain of field selections rooted at
// the frame's receiver or a parameter.
func (s *Summarizer) fieldPathTerm(sel *ast.SelectorExpr, fr *Frame) (Part, bool) {
	selInfo, ok := s.pass.TypesInfo.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return Part{}, false
	}
	field, ok := selInfo.Obj().(*types.Var)
	if !ok {
		return Part{}, false
	}
	base := s.ExprTerm(sel.X, fr)
	if len(base) != 1 || base[0].Opaque || base[0].Const != "" {
		return Part{}, false
	}
	root := base[0]
	root.Fields = append(append([]*types.Var{}, root.Fields...), field)
	return root, true
}

func (s *Summarizer) constString(e ast.Expr) (string, bool) {
	tv, ok := s.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// hostValueFlows reports whether any argument, the receiver, or the
// called expression itself carries a host-typed value into the call.
func (s *Summarizer) hostValueFlows(call *ast.CallExpr) bool {
	exprs := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	exprs = append(exprs, call.Args...)
	for _, e := range exprs {
		t := s.pass.TypesInfo.Types[e].Type
		if t == nil {
			continue
		}
		for _, name := range hostTypeNames {
			if NamedTypeIs(t, HostPath, name) {
				return true
			}
		}
	}
	return false
}
