// Package reqmeta enforces that requirement metadata is populated: a
// core.Finding that reaches a report with an empty ID, severity or
// description is unauditable — dedup keys collapse, fleet aggregation
// buckets it under "", and the emitted STIG/JSON is rejected by
// downstream tooling. The analyzer checks, in non-test files:
//
//  1. composite literals of core.Finding whose ID, Sev or Desc field is
//     a constant empty string, or is omitted while other identity
//     fields are populated with non-empty constants (a literal that is
//     entirely dynamic — fields copied from parameters or other
//     values — is assumed to be a transform and left alone, unless the
//     parameter itself is constant-propagated, below);
//  2. constant propagation one call deep within a package: when a
//     Finding field is set from a parameter of the enclosing function,
//     every same-package call site passing a constant "" (or relying on
//     a missing varargs slot) for that parameter is flagged — this is
//     the ubuntuFinding(id, version, sev, desc, ...) constructor
//     pattern;
//  3. methods FindingID, Severity or Description on a type implementing
//     core.Requirement whose every return statement yields a constant
//     empty string.
//
// Known limits: propagation is one level and same-package only (an
// exported constructor called with "" from another package is not
// seen); fields filled via field assignment after the literal
// (f.ID = "...") are not tracked, so a zero-valued literal followed by
// assignments is reported — populate identity fields in the literal.
package reqmeta

import (
	"go/ast"
	"go/constant"
	"go/types"

	"veridevops/internal/analysis"
)

// Analyzer is the reqmeta pass.
var Analyzer = &analysis.Analyzer{
	Name: "reqmeta",
	Doc:  "core.Finding literals and Requirement accessor methods must carry non-empty ID, severity and description",
	Run:  run,
}

// required names the Finding identity fields that must be populated,
// with the accessor method enforcing the same contract.
var required = map[string]string{
	"ID":   "FindingID",
	"Sev":  "Severity",
	"Desc": "Description",
}

func run(pass *analysis.Pass) (any, error) {
	req := analysis.InterfaceType(pass.Pkg, analysis.CorePath, "Requirement")
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAccessor(pass, fd, req)
			params := paramObjects(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.CompositeLit); ok {
					checkLiteral(pass, lit, params, fd, f)
				}
				return true
			})
		}
	}
	return nil, nil
}

// paramObjects maps each named parameter object of fd to its index in
// the flattened parameter list, for call-site constant propagation.
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	i := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// checkLiteral validates one core.Finding composite literal.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit, params map[types.Object]int, fd *ast.FuncDecl, file *ast.File) {
	t := pass.TypesInfo.Types[lit].Type
	if !analysis.NamedTypeIs(t, analysis.CorePath, "Finding") {
		return
	}
	fields := literalFields(pass, lit)
	if fields == nil {
		return
	}
	// Entirely-dynamic literals (no constant identity field at all, every
	// required field fed from non-parameter values) are transforms —
	// loader code copying parsed XML into Findings. Leave those alone.
	anyConstant := false
	for name := range required {
		if fv, ok := fields[name]; ok {
			if _, isConst := constString(pass, fv); isConst {
				anyConstant = true
			}
			if _, isParam := paramOf(pass, fv, params); isParam {
				anyConstant = true
			}
		}
	}
	if !anyConstant {
		return
	}
	for name := range required {
		fv, present := fields[name]
		if !present {
			pass.Reportf(lit.Pos(),
				"core.Finding literal omits %s: findings with empty identity metadata collapse in dedup and fail report emission", name)
			continue
		}
		if s, isConst := constString(pass, fv); isConst {
			if s == "" {
				pass.Reportf(fv.Pos(),
					"core.Finding literal sets %s to \"\": findings with empty identity metadata collapse in dedup and fail report emission", name)
			}
			continue
		}
		if idx, isParam := paramOf(pass, fv, params); isParam {
			checkCallSites(pass, fd, file, name, idx)
		}
	}
}

// literalFields maps Finding field names to their value expressions for
// keyed literals, and by declaration order for positional ones. Returns
// nil when the literal form cannot be resolved.
func literalFields(pass *analysis.Pass, lit *ast.CompositeLit) map[string]ast.Expr {
	out := map[string]ast.Expr{}
	if len(lit.Elts) == 0 {
		return out
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
		for _, e := range lit.Elts {
			kv, ok := e.(*ast.KeyValueExpr)
			if !ok {
				return nil
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				out[id.Name] = kv.Value
			}
		}
		return out
	}
	st, ok := pass.TypesInfo.Types[lit].Type.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i, e := range lit.Elts {
		if i >= st.NumFields() {
			break
		}
		out[st.Field(i).Name()] = e
	}
	return out
}

// constString evaluates expr as a constant string via the type-checker's
// constant folding.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// paramOf reports whether expr is a bare reference to a parameter of the
// enclosing function, returning its flattened index.
func paramOf(pass *analysis.Pass, expr ast.Expr, params map[types.Object]int) (int, bool) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return 0, false
	}
	idx, ok := params[obj]
	return idx, ok
}

// checkCallSites propagates the emptiness requirement for parameter idx
// of constructor fd to its same-package call sites: any call passing a
// constant "" in that slot is flagged at the argument.
func checkCallSites(pass *analysis.Pass, fd *ast.FuncDecl, _ *ast.File, fieldName string, idx int) {
	ctor := pass.TypesInfo.Defs[fd.Name]
	if ctor == nil {
		return
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callee = pass.TypesInfo.Uses[fun]
			case *ast.SelectorExpr:
				callee = pass.TypesInfo.Uses[fun.Sel]
			}
			if callee != ctor || idx >= len(call.Args) {
				return true
			}
			if s, isConst := constString(pass, call.Args[idx]); isConst && s == "" {
				pass.Reportf(call.Args[idx].Pos(),
					"empty %s passed to %s: the constructed core.Finding will carry empty identity metadata",
					fieldName, fd.Name.Name)
			}
			return true
		})
	}
}

// checkAccessor flags FindingID/Severity/Description methods on
// Requirement implementations whose every return is a constant "".
func checkAccessor(pass *analysis.Pass, fd *ast.FuncDecl, req *types.Interface) {
	if fd.Recv == nil || req == nil {
		return
	}
	name := fd.Name.Name
	isAccessor := false
	for _, m := range required {
		if m == name {
			isAccessor = true
		}
	}
	if !isAccessor {
		return
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !analysis.ImplementsIface(recv.Type(), req) {
		return
	}
	allEmpty := true
	sawReturn := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		if len(ret.Results) != 1 {
			allEmpty = false
			return true
		}
		if s, isConst := constString(pass, ret.Results[0]); !isConst || s != "" {
			allEmpty = false
		}
		return true
	})
	if sawReturn && allEmpty {
		pass.Reportf(fd.Name.Pos(),
			"%s on Requirement implementation %s always returns \"\": findings built from it carry empty identity metadata",
			name, types.TypeString(recv.Type(), types.RelativeTo(pass.Pkg)))
	}
}
