package reqmeta_test

import (
	"testing"

	"veridevops/internal/analysis/analysistest"
	"veridevops/internal/analysis/reqmeta"
)

func TestReqmeta(t *testing.T) {
	analysistest.Run(t, reqmeta.Analyzer, "testdata/src/a", "a")
}
