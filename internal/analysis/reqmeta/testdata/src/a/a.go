// Fixture for the reqmeta analyzer: empty identity metadata in
// core.Finding literals, constructor call sites and Requirement
// accessors.
package a

import "veridevops/internal/core"

const vID = "V-100001"

// Flagged: a constant empty ID alongside populated identity fields.
func emptyID() core.Finding {
	return core.Finding{
		ID:   "", // want `core\.Finding literal sets ID to ""`
		Sev:  "high",
		Desc: "root login over ssh must be disabled",
	}
}

// Flagged: Desc omitted while the other identity fields are constant.
func omitsDesc() core.Finding {
	return core.Finding{ // want `core\.Finding literal omits Desc`
		ID:  vID,
		Sev: "medium",
	}
}

// Flagged: positional literal with an empty severity slot.
func positional() core.Finding {
	return core.Finding{vID, "Version 1", "SV-1_rule", "ia", "", "telnet must be absent", "STIG", "2026-01-01", "cc", "ct", "fc", "ft"} // want `core\.Finding literal sets Sev to ""`
}

// Clean: fully populated.
func populated() core.Finding {
	return core.Finding{ID: vID, Sev: "high", Desc: "telnet must be absent"}
}

// Clean: an entirely dynamic literal is a transform (loader code copying
// parsed data), not a construction site.
func fromParsed(src core.Finding) core.Finding {
	return core.Finding{ID: src.ID, Sev: src.Sev, Desc: src.Desc}
}

// newFinding is the ubuntuFinding constructor pattern: identity fields
// flow from parameters, so the emptiness requirement propagates to its
// call sites.
func newFinding(id, sev, desc string) core.Finding {
	return core.Finding{ID: id, Ver: "Version 1", Sev: sev, Desc: desc}
}

var okSite = newFinding(vID, "high", "disable telnet")

var badSite = newFinding("", "high", "disable telnet") // want `empty ID passed to newFinding`

// silent overrides a Requirement accessor to always return nothing.
type silent struct{ core.Finding }

func (s silent) Severity() string { return "" } // want `Severity on Requirement implementation silent always returns ""`

// loud is the clean shape: a defaulting accessor.
type loud struct{ core.Finding }

func (l loud) Severity() string {
	if l.Sev == "" {
		return "medium"
	}
	return l.Sev
}

// Suppressed with a recorded reason: a sentinel finding whose empty ID
// marks a placeholder slot.
func sentinel() core.Finding {
	return core.Finding{
		//lint:ignore reqmeta sentinel slot: the importer assigns the real ID on load
		ID:   "",
		Sev:  "low",
		Desc: "placeholder until the catalogue import runs",
	}
}
