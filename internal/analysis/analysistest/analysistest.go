// Package analysistest runs an analyzer over a fixture directory and
// checks its diagnostics against expectations written in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest on top
// of the self-contained internal/analysis loader.
//
// Expectations are trailing comments of the form
//
//	x.Check() // want "regexp"
//	sp := tr.Root("a") // want "started here" "second regexp"
//
// Each quoted string is a regexp that must match the message of exactly
// one diagnostic reported on that line; every diagnostic must be
// claimed by exactly one expectation. Lines with no want comment must
// produce no diagnostics. Fixtures live under the analyzer's testdata/
// directory (ignored by go build), may import real module packages, and
// may include *_test.go-named files to exercise test-file-specific
// rules.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"veridevops/internal/analysis"
)

// Run loads the fixture package in dir under importPath, applies the
// analyzer, and reports mismatches between its diagnostics and the
// // want expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	unit, err := analysis.LoadDir(abs, importPath)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	findings, err := analysis.Run([]*analysis.Unit{unit}, []*analysis.Analyzer{a}, abs)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	wants, err := parseWants(unit)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, f := range findings {
		key := place{file: f.File, line: f.Line}
		if !claim(wants[key], f.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", f.File, f.Line, f.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.re.String())
			}
		}
	}
}

type place struct {
	file string
	line int
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation whose regexp matches msg.
func claim(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts // want expectations from every comment in the
// unit, keyed by (basename, line) to match Finding's relativised File.
func parseWants(u *analysis.Unit) (map[place][]*expectation, error) {
	out := map[place][]*expectation{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				key := place{file: filepath.Base(pos.Filename), line: pos.Line}
				exps, err := parseExpectations(text)
				if err != nil {
					return nil, fmt.Errorf("%s: %v", position(pos), err)
				}
				out[key] = append(out[key], exps...)
			}
		}
	}
	return out, nil
}

// parseExpectations splits a want payload into its quoted regexps,
// accepting both "double-quoted" and `backquoted` strings.
func parseExpectations(text string) ([]*expectation, error) {
	var out []*expectation
	rest := strings.TrimSpace(text)
	for rest != "" {
		var raw, tail string
		switch rest[0] {
		case '"':
			end := matchDoubleQuote(rest)
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in want comment: %s", rest)
			}
			raw, tail = rest[:end+1], rest[end+1:]
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in want comment: %s", rest)
			}
			raw, tail = rest[:end+2], rest[end+2:]
		default:
			return nil, fmt.Errorf("want comment must hold quoted regexps, got: %s", rest)
		}
		unq, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want string %s: %v", raw, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %s: %v", raw, err)
		}
		out = append(out, &expectation{re: re})
		rest = strings.TrimSpace(tail)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment holds no expectations")
	}
	return out, nil
}

// matchDoubleQuote returns the index of the closing quote of the
// double-quoted string starting at s[0], honouring backslash escapes.
func matchDoubleQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

func position(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
