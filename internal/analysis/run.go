package analysis

import (
	"path/filepath"
	"sort"
)

// Run applies every analyzer to every unit, resolves positions, filters
// findings through the //lint: directives of each unit, and returns the
// surviving findings sorted by file, line, column, analyzer. File paths
// are relativised to rel when possible (the module root for cmd/vdolint),
// keeping output stable across machines.
func Run(units []*Unit, analyzers []*Analyzer, rel string) ([]Finding, error) {
	var all []Finding
	for _, u := range units {
		idx, bad := parseDirectives(u)
		all = append(all, bad...)
		for _, a := range analyzers {
			var found []Finding
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := u.Fset.Position(d.Pos)
				sev := d.Severity
				if sev == "" {
					sev = SeverityError
				}
				found = append(found, Finding{
					Analyzer: a.Name,
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
					Package:  u.ImportPath,
					Severity: sev,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
			for _, f := range found {
				if !suppressed(idx, f) {
					all = append(all, f)
				}
			}
		}
	}
	for i := range all {
		if rel == "" {
			continue
		}
		if r, err := filepath.Rel(rel, all[i].File); err == nil && !filepath.IsAbs(r) {
			all[i].File = r
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all, nil
}
