package gwt

import (
	"fmt"
	"sort"
	"strings"
)

// Requirement traceability: TIGER links generated tests back to the
// security requirements that motivated the model, so a test suite can be
// audited for requirement coverage, not just structural coverage.

// RequirementMap associates model edges with requirement IDs (an edge may
// exercise several requirements; a requirement may be exercised by several
// edges).
type RequirementMap struct {
	byEdge map[string][]string
	all    map[string]struct{}
}

// NewRequirementMap returns an empty mapping.
func NewRequirementMap() *RequirementMap {
	return &RequirementMap{byEdge: map[string][]string{}, all: map[string]struct{}{}}
}

// Link records that traversing edgeID exercises reqID.
func (rm *RequirementMap) Link(edgeID, reqID string) *RequirementMap {
	rm.byEdge[edgeID] = append(rm.byEdge[edgeID], reqID)
	rm.all[reqID] = struct{}{}
	return rm
}

// Declare registers a requirement with no edge yet: it will show up as
// uncovered until linked and exercised, surfacing traceability gaps.
func (rm *RequirementMap) Declare(reqID string) *RequirementMap {
	rm.all[reqID] = struct{}{}
	return rm
}

// Requirements returns all known requirement IDs, sorted.
func (rm *RequirementMap) Requirements() []string {
	out := make([]string, 0, len(rm.all))
	for r := range rm.all {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Covered returns the requirement IDs exercised by the test cases, sorted.
func (rm *RequirementMap) Covered(tcs []TestCase) []string {
	set := map[string]struct{}{}
	for _, tc := range tcs {
		for _, st := range tc.Steps {
			for _, r := range rm.byEdge[st.EdgeID] {
				set[r] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Coverage returns the fraction of known requirements exercised.
func (rm *RequirementMap) Coverage(tcs []TestCase) float64 {
	if len(rm.all) == 0 {
		return 1
	}
	return float64(len(rm.Covered(tcs))) / float64(len(rm.all))
}

// Uncovered returns the requirement IDs not exercised, sorted.
func (rm *RequirementMap) Uncovered(tcs []TestCase) []string {
	covered := map[string]struct{}{}
	for _, r := range rm.Covered(tcs) {
		covered[r] = struct{}{}
	}
	var out []string
	for _, r := range rm.Requirements() {
		if _, ok := covered[r]; !ok {
			out = append(out, r)
		}
	}
	return out
}

// Matrix renders the traceability matrix: one row per requirement with the
// edges that exercise it and whether the suite covers it.
func (rm *RequirementMap) Matrix(tcs []TestCase) string {
	coveredSet := map[string]bool{}
	for _, r := range rm.Covered(tcs) {
		coveredSet[r] = true
	}
	// Invert edge->req into req->edges.
	byReq := map[string][]string{}
	for e, reqs := range rm.byEdge {
		for _, r := range reqs {
			byReq[r] = append(byReq[r], e)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-9s %s\n", "REQUIREMENT", "COVERED", "EDGES")
	for _, r := range rm.Requirements() {
		edges := byReq[r]
		sort.Strings(edges)
		fmt.Fprintf(&b, "%-16s %-9v %s\n", r, coveredSet[r], strings.Join(edges, ","))
	}
	fmt.Fprintf(&b, "requirement coverage: %.0f%%\n", 100*rm.Coverage(tcs))
	return b.String()
}
