package gwt

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// TIGER-style concretisation: abstract test cases (JSON) + signal
// definitions (XML) + mapping rules = executable test scripts. Mirrors the
// JsonReading / Signal / xmlReader / TestGenerator / ScriptCreator classes
// of the reference repository.

// Signal describes one stimulus/observation channel of the system under
// test, as read from the signal XML.
type Signal struct {
	Name string  `xml:"name,attr"`
	Type string  `xml:"type,attr"` // "bool" | "int" | "float"
	Unit string  `xml:"unit,attr"`
	Min  float64 `xml:"min,attr"`
	Max  float64 `xml:"max,attr"`
}

type signalFile struct {
	XMLName xml.Name `xml:"signals"`
	Signals []Signal `xml:"signal"`
}

// ReadSignalsXML parses the signal table (the xmlReader class).
func ReadSignalsXML(r io.Reader) ([]Signal, error) {
	var f signalFile
	if err := xml.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("gwt: signals xml: %w", err)
	}
	for _, s := range f.Signals {
		if s.Name == "" {
			return nil, fmt.Errorf("gwt: signal without a name")
		}
	}
	return f.Signals, nil
}

// ReadAbstractTests parses abstract test cases from JSON (the JsonReading
// class). The format is the output of json.Marshal on []TestCase.
func ReadAbstractTests(r io.Reader) ([]TestCase, error) {
	var tcs []TestCase
	if err := json.NewDecoder(r).Decode(&tcs); err != nil {
		return nil, fmt.Errorf("gwt: abstract tests json: %w", err)
	}
	return tcs, nil
}

// WriteAbstractTests stores abstract test cases as JSON.
func WriteAbstractTests(w io.Writer, tcs []TestCase) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tcs)
}

// MappingRule concretises abstract steps whose edge name matches Pattern
// (a regular expression). Template is the emitted script line; $1..$9
// refer to capture groups and ${signal:NAME} inlines the named signal's
// metadata reference.
type MappingRule struct {
	Pattern  string
	Template string

	re *regexp.Regexp
}

// Compile prepares the rule's regular expression.
func (r *MappingRule) Compile() error {
	re, err := regexp.Compile(r.Pattern)
	if err != nil {
		return fmt.Errorf("gwt: mapping rule %q: %w", r.Pattern, err)
	}
	r.re = re
	return nil
}

// TestGenerator concretises abstract test cases with mapping rules over a
// signal table (the TestGenerator class).
type TestGenerator struct {
	Signals []Signal
	Rules   []MappingRule
	// Fallback is emitted (with the step name substituted for %s) when no
	// rule matches; empty means unmatched steps are an error.
	Fallback string
}

// NewTestGenerator compiles the rules.
func NewTestGenerator(signals []Signal, rules []MappingRule, fallback string) (*TestGenerator, error) {
	g := &TestGenerator{Signals: signals, Rules: make([]MappingRule, len(rules)), Fallback: fallback}
	copy(g.Rules, rules)
	for i := range g.Rules {
		if err := g.Rules[i].Compile(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (g *TestGenerator) signal(name string) (Signal, bool) {
	for _, s := range g.Signals {
		if s.Name == name {
			return s, true
		}
	}
	return Signal{}, false
}

var signalRefRe = regexp.MustCompile(`\$\{signal:([^}]+)\}`)

// ConcretizeStep maps one abstract step to a script line.
func (g *TestGenerator) ConcretizeStep(st Step) (string, error) {
	for _, r := range g.Rules {
		m := r.re.FindStringSubmatch(st.EdgeName)
		if m == nil {
			continue
		}
		line := r.Template
		for i := len(m) - 1; i >= 1; i-- {
			line = strings.ReplaceAll(line, fmt.Sprintf("$%d", i), m[i])
		}
		var serr error
		line = signalRefRe.ReplaceAllStringFunc(line, func(ref string) string {
			name := signalRefRe.FindStringSubmatch(ref)[1]
			s, ok := g.signal(name)
			if !ok {
				serr = fmt.Errorf("gwt: template references unknown signal %q", name)
				return ref
			}
			return fmt.Sprintf("%s[%s %g..%g]", s.Name, s.Type, s.Min, s.Max)
		})
		if serr != nil {
			return "", serr
		}
		return line, nil
	}
	if g.Fallback != "" {
		return fmt.Sprintf(g.Fallback, st.EdgeName), nil
	}
	return "", fmt.Errorf("gwt: no mapping rule matches step %q", st.EdgeName)
}

// Script is one concretised test script.
type Script struct {
	Name  string
	Lines []string
}

// Concretize maps every abstract test case to a script.
func (g *TestGenerator) Concretize(tcs []TestCase) ([]Script, error) {
	out := make([]Script, 0, len(tcs))
	for _, tc := range tcs {
		sc := Script{Name: tc.Name}
		for _, st := range tc.Steps {
			line, err := g.ConcretizeStep(st)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", tc.Name, err)
			}
			sc.Lines = append(sc.Lines, line)
		}
		out = append(out, sc)
	}
	return out, nil
}

// ScriptCreator renders scripts in a target syntax (the ScriptCreator
// class); the default emits shell-style scripts.
type ScriptCreator struct {
	// Header lines prepended to every script.
	Header []string
	// LinePrefix is prepended to every concretised line.
	LinePrefix string
}

// Render writes one script.
func (c ScriptCreator) Render(w io.Writer, s Script) error {
	if _, err := fmt.Fprintf(w, "# test case: %s\n", s.Name); err != nil {
		return err
	}
	for _, h := range c.Header {
		if _, err := fmt.Fprintln(w, h); err != nil {
			return err
		}
	}
	for _, l := range s.Lines {
		if _, err := fmt.Fprintln(w, c.LinePrefix+l); err != nil {
			return err
		}
	}
	return nil
}
