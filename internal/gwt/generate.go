package gwt

import (
	"fmt"
	"math/rand"
)

// Abstract test-path generators, mirroring GraphWalker's generator/stop-
// condition pairs.

// Progress is the incremental generation state a StopCondition inspects;
// it is updated in O(1) per step so stop conditions stay cheap on long
// walks.
type Progress struct {
	Model *Model
	// Steps is the number of steps taken so far.
	Steps int

	covered map[string]bool
}

// EdgeCoverage returns the fraction of model edges covered so far.
func (p *Progress) EdgeCoverage() float64 {
	if len(p.Model.Edges) == 0 {
		return 1
	}
	return float64(len(p.covered)) / float64(len(p.Model.Edges))
}

func (p *Progress) record(e Edge) {
	p.covered[e.ID] = true
	p.Steps++
}

// StopCondition decides when a generator may stop.
type StopCondition func(p *Progress) bool

// EdgeCoverageAtLeast stops once the given fraction of edges is covered.
func EdgeCoverageAtLeast(frac float64) StopCondition {
	return func(p *Progress) bool { return p.EdgeCoverage() >= frac }
}

// StepsAtMost stops after the given total number of steps.
func StepsAtMost(n int) StopCondition {
	return func(p *Progress) bool { return p.Steps >= n }
}

// RandomWalk walks the model uniformly at random from the start vertex
// until the stop condition holds (checked at every step), producing a
// single test case. Vertices without outgoing edges restart the walk.
func RandomWalk(m *Model, rng *rand.Rand, stop StopCondition) []TestCase {
	return walk(m, stop, func(outs []int) int { return outs[rng.Intn(len(outs))] })
}

// WeightedRandomWalk is RandomWalk biased by edge weights (unweighted
// edges count as weight 1).
func WeightedRandomWalk(m *Model, rng *rand.Rand, stop StopCondition) []TestCase {
	return walk(m, stop, func(outs []int) int {
		total := 0.0
		for _, ei := range outs {
			total += weightOf(m.Edges[ei])
		}
		x := rng.Float64() * total
		for _, ei := range outs {
			x -= weightOf(m.Edges[ei])
			if x <= 0 {
				return ei
			}
		}
		return outs[len(outs)-1]
	})
}

func weightOf(e Edge) float64 {
	if e.Weight <= 0 {
		return 1
	}
	return e.Weight
}

func walk(m *Model, stop StopCondition, choose func(outs []int) int) []TestCase {
	m.index()
	tc := TestCase{Name: "walk"}
	at := m.StartID
	progress := &Progress{Model: m, covered: map[string]bool{}}
	const hardCap = 1 << 24 // runaway guard for unsatisfiable stop conditions
	for progress.Steps < hardCap {
		if stop(progress) {
			break
		}
		outs := m.Out(at)
		if len(outs) == 0 {
			if at == m.StartID {
				break // the start vertex is a sink: nothing to walk
			}
			at = m.StartID // dead end: restart
			continue
		}
		ei := choose(outs)
		e := m.Edges[ei]
		tc.Steps = append(tc.Steps, Step{EdgeID: e.ID, EdgeName: e.Name, VertexID: e.To})
		progress.record(e)
		at = e.To
	}
	return []TestCase{tc}
}

// AllEdges generates test cases achieving 100% edge coverage with a greedy
// nearest-uncovered strategy: from the current vertex, walk the BFS-
// shortest path to the closest uncovered edge and traverse it; when no
// uncovered edge is reachable, close the test case and restart from the
// start vertex. On strongly-connected models this yields a single test
// case whose length is near the chinese-postman optimum.
func AllEdges(m *Model) []TestCase {
	m.index()
	covered := map[string]bool{}
	var tcs []TestCase
	caseNo := 0

	for len(covered) < len(m.Edges) {
		caseNo++
		tc := TestCase{Name: fmt.Sprintf("all-edges-%d", caseNo)}
		at := m.StartID
		for {
			path := m.pathToUncovered(at, covered)
			if path == nil {
				break // nothing reachable from here; start a new case
			}
			for _, ei := range path {
				e := m.Edges[ei]
				tc.Steps = append(tc.Steps, Step{EdgeID: e.ID, EdgeName: e.Name, VertexID: e.To})
				covered[e.ID] = true
				at = e.To
			}
		}
		if len(tc.Steps) == 0 {
			// No uncovered edge reachable from start: disconnected input.
			break
		}
		tcs = append(tcs, tc)
	}
	return tcs
}

// pathToUncovered returns the edge-index path from `from` to (and through)
// the nearest uncovered edge, or nil when none is reachable. BFS over
// vertices with edge parents.
func (m *Model) pathToUncovered(from string, covered map[string]bool) []int {
	type crumb struct {
		vertex  string
		viaEdge int
		parent  int // index into crumbs, -1 for root
	}
	crumbs := []crumb{{vertex: from, viaEdge: -1, parent: -1}}
	seen := map[string]bool{from: true}
	for head := 0; head < len(crumbs); head++ {
		cur := crumbs[head]
		for _, ei := range m.Out(cur.vertex) {
			e := m.Edges[ei]
			if !covered[e.ID] {
				// Take the path to cur, then this uncovered edge.
				var rev []int
				for i := head; crumbs[i].viaEdge >= 0; i = crumbs[i].parent {
					rev = append(rev, crumbs[i].viaEdge)
				}
				path := make([]int, 0, len(rev)+1)
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return append(path, ei)
			}
			if !seen[e.To] {
				seen[e.To] = true
				crumbs = append(crumbs, crumb{vertex: e.To, viaEdge: ei, parent: head})
			}
		}
	}
	return nil
}
