// Package gwt implements the Given-When-Then tooling of VeriDevOps D2.7:
// BDD-style scenario specifications, GraphWalker-style model graphs with
// abstract test-path generation (random, weighted-random and all-edges
// strategies), and TIGER-style concretisation of abstract test cases into
// executable scripts via signal tables and mapping rules.
package gwt

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Scenario is one Given-When-Then specification: preconditions (Given),
// stimulus (When) and expected reaction (Then), each possibly extended with
// And/But continuation steps.
type Scenario struct {
	Name  string
	Given []string
	When  []string
	Then  []string
}

// Validate checks the scenario is well-formed: named, with at least one
// When and one Then step.
func (s Scenario) Validate() error {
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("gwt: scenario without a name")
	}
	if len(s.When) == 0 {
		return fmt.Errorf("gwt: scenario %q has no When step", s.Name)
	}
	if len(s.Then) == 0 {
		return fmt.Errorf("gwt: scenario %q has no Then step", s.Name)
	}
	return nil
}

// String renders the scenario in Gherkin-like layout.
func (s Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario: %s\n", s.Name)
	emit := func(kw string, steps []string) {
		for i, st := range steps {
			k := kw
			if i > 0 {
				k = "And"
			}
			fmt.Fprintf(&b, "  %s %s\n", k, st)
		}
	}
	emit("Given", s.Given)
	emit("When", s.When)
	emit("Then", s.Then)
	return b.String()
}

// ParseScenarios parses Gherkin-like text into scenarios. Supported
// keywords: "Scenario:", "Given", "When", "Then", "And", "But" (And/But
// continue the preceding section); '#' starts a comment line.
func ParseScenarios(text string) ([]Scenario, error) {
	var out []Scenario
	var cur *Scenario
	section := ""
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Validate(); err != nil {
			return err
		}
		out = append(out, *cur)
		cur = nil
		return nil
	}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kw, rest := splitKeyword(line)
		switch kw {
		case "Scenario":
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Scenario{Name: rest}
			section = ""
		case "Given", "When", "Then":
			if cur == nil {
				return nil, fmt.Errorf("gwt: line %d: %s outside a scenario", ln+1, kw)
			}
			if rest == "" {
				return nil, fmt.Errorf("gwt: line %d: empty %s step", ln+1, kw)
			}
			section = kw
			cur.add(section, rest)
		case "And", "But":
			if cur == nil || section == "" {
				return nil, fmt.Errorf("gwt: line %d: %s without a preceding step", ln+1, kw)
			}
			if rest == "" {
				return nil, fmt.Errorf("gwt: line %d: empty %s step", ln+1, kw)
			}
			cur.add(section, rest)
		default:
			return nil, fmt.Errorf("gwt: line %d: unrecognized line %q", ln+1, line)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Scenario) add(section, step string) {
	switch section {
	case "Given":
		s.Given = append(s.Given, step)
	case "When":
		s.When = append(s.When, step)
	case "Then":
		s.Then = append(s.Then, step)
	}
}

func splitKeyword(line string) (kw, rest string) {
	if i := strings.Index(line, ":"); i > 0 && strings.TrimSpace(line[:i]) == "Scenario" {
		return "Scenario", strings.TrimSpace(line[i+1:])
	}
	for _, k := range []string{"Given", "When", "Then", "And", "But"} {
		if line == k {
			return k, ""
		}
		if strings.HasPrefix(line, k) {
			// Any whitespace separates keyword from step text — tabs and
			// runs of spaces are as valid as a single space. A non-space
			// continuation ("Givenx") is not this keyword.
			tail := line[len(k):]
			if r, _ := utf8.DecodeRuneInString(tail); unicode.IsSpace(r) {
				return k, strings.TrimSpace(tail)
			}
		}
	}
	return "", line
}

// ToModel converts scenarios to a model graph: a start vertex, one vertex
// per distinct Given/Then state, and one edge per When stimulus, giving the
// GraphWalker input TIGER expects when scenarios are the source artefact.
func ToModel(scenarios []Scenario) (*Model, error) {
	m := NewModel("scenarios", "start")
	seen := map[string]bool{"start": true}
	ensure := func(name string) {
		if !seen[name] {
			m.AddVertex(Vertex{ID: name, Name: name})
			seen[name] = true
		}
	}
	// Setup and reset edges carry no stimulus of their own, so scenarios
	// sharing a Given (or Then) state share one edge: parallel duplicates
	// would only inflate all-edges path generation and coverage
	// denominators without adding distinguishable behaviour.
	setupDone := map[string]bool{}
	resetDone := map[string]bool{}
	for i, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		from := "start"
		if len(sc.Given) > 0 {
			from = "given:" + strings.Join(sc.Given, "; ")
			ensure(from)
			if !setupDone[from] {
				setupDone[from] = true
				m.AddEdge(Edge{
					ID:   fmt.Sprintf("setup_%d", i),
					Name: "setup: " + sc.Name,
					From: "start", To: from,
				})
			}
		}
		to := "then:" + strings.Join(sc.Then, "; ")
		ensure(to)
		m.AddEdge(Edge{
			ID:   fmt.Sprintf("when_%d", i),
			Name: strings.Join(sc.When, " and "),
			From: from, To: to,
		})
		// Return edge so generators can chain scenarios.
		if !resetDone[to] {
			resetDone[to] = true
			m.AddEdge(Edge{
				ID:   fmt.Sprintf("reset_%d", i),
				Name: "reset",
				From: to, To: "start",
			})
		}
	}
	return m, m.Validate()
}
