package gwt

import (
	"strings"
	"testing"
)

const sampleGraphML = `<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="label" for="all" attr.name="label" attr.type="string"/>
  <key id="weight" for="edge" attr.name="weight" attr.type="double"/>
  <graph id="login-model" edgedefault="directed">
    <node id="n0"><data key="label">Start</data></node>
    <node id="n1"><data key="label">logged in</data></node>
    <node id="n2"/>
    <edge id="e_login" source="n0" target="n1"><data key="label">login</data><data key="weight">2.5</data></edge>
    <edge source="n1" target="n2"><data key="label">escalate</data></edge>
    <edge id="e_out" source="n2" target="n0"/>
  </graph>
</graphml>`

func TestReadGraphML(t *testing.T) {
	m, err := ReadGraphML(strings.NewReader(sampleGraphML))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "login-model" || m.StartID != "n0" {
		t.Errorf("model = %q start=%q", m.Name, m.StartID)
	}
	if len(m.Vertices) != 3 || len(m.Edges) != 3 {
		t.Fatalf("vertices=%d edges=%d", len(m.Vertices), len(m.Edges))
	}
	if m.Edges[0].Name != "login" || m.Edges[0].Weight != 2.5 {
		t.Errorf("edge 0 = %+v", m.Edges[0])
	}
	// Unlabelled edge falls back to generated/explicit IDs.
	if m.Edges[1].ID != "e1" || m.Edges[2].Name != "e_out" {
		t.Errorf("fallbacks: %+v / %+v", m.Edges[1], m.Edges[2])
	}
	// Unlabelled node keeps its ID as name.
	found := false
	for _, v := range m.Vertices {
		if v.ID == "n2" && v.Name == "n2" {
			found = true
		}
	}
	if !found {
		t.Error("n2 should fall back to its ID as name")
	}
	// The model is generatable.
	tcs := AllEdges(m)
	if EdgeCoverage(m, tcs) != 1 {
		t.Error("GraphML model should be fully coverable")
	}
}

func TestReadGraphMLStartConvention(t *testing.T) {
	// Start label wins even when it is not the first node.
	doc := strings.Replace(sampleGraphML, `<node id="n0"><data key="label">Start</data></node>`,
		`<node id="n0"><data key="label">zero</data></node>`, 1)
	doc = strings.Replace(doc, `<node id="n1"><data key="label">logged in</data></node>`,
		`<node id="n1"><data key="label">START</data></node>`, 1)
	// n1 as start leaves n0 unreachable unless an edge returns; e_out goes
	// n2->n0 and e_login n0->n1, so from n1: escalate->n2->n0: reachable.
	m, err := ReadGraphML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if m.StartID != "n1" {
		t.Errorf("StartID = %q, want n1 (labelled START)", m.StartID)
	}
}

func TestReadGraphMLErrors(t *testing.T) {
	cases := []string{
		"not xml",
		"<graphml></graphml>",
		`<graphml><graph id="g"></graph></graphml>`,
		`<graphml><graph id="g"><node id="a"/><edge target="a"/></graph></graphml>`,
		`<graphml><graph id="g"><node id="a"/><edge source="a" target="ghost"/></graph></graphml>`,
		`<graphml><graph id="g"><node id="a"/><edge source="a" target="a"><data key="weight">x</data></edge></graph></graphml>`,
	}
	for _, c := range cases {
		if _, err := ReadGraphML(strings.NewReader(c)); err == nil {
			t.Errorf("ReadGraphML(%q) should fail", c)
		}
	}
}
