package gwt

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// Vertex is a model state.
type Vertex struct {
	ID   string `json:"id"`
	Name string `json:"name"`
}

// Edge is a model transition (a test stimulus).
type Edge struct {
	ID     string  `json:"id"`
	Name   string  `json:"name"`
	From   string  `json:"sourceVertexId"`
	To     string  `json:"targetVertexId"`
	Weight float64 `json:"weight,omitempty"`
}

// Model is a GraphWalker-style directed graph model.
type Model struct {
	Name     string   `json:"name"`
	StartID  string   `json:"startVertexId"`
	Vertices []Vertex `json:"vertices"`
	Edges    []Edge   `json:"edges"`

	byID map[string]int // vertex id -> index
	out  map[string][]int
}

// NewModel returns a model containing only the start vertex.
func NewModel(name, startID string) *Model {
	m := &Model{Name: name, StartID: startID}
	m.AddVertex(Vertex{ID: startID, Name: startID})
	return m
}

// AddVertex appends a vertex.
func (m *Model) AddVertex(v Vertex) *Model {
	m.Vertices = append(m.Vertices, v)
	m.invalidate()
	return m
}

// AddEdge appends an edge.
func (m *Model) AddEdge(e Edge) *Model {
	m.Edges = append(m.Edges, e)
	m.invalidate()
	return m
}

func (m *Model) invalidate() { m.byID = nil; m.out = nil }

func (m *Model) index() {
	if m.byID != nil {
		return
	}
	m.byID = make(map[string]int, len(m.Vertices))
	for i, v := range m.Vertices {
		m.byID[v.ID] = i
	}
	m.out = make(map[string][]int)
	for i, e := range m.Edges {
		m.out[e.From] = append(m.out[e.From], i)
	}
}

// Out returns the indices of edges leaving the vertex.
func (m *Model) Out(vertexID string) []int {
	m.index()
	return m.out[vertexID]
}

// Validate checks referential integrity and that every vertex and edge is
// reachable from the start vertex.
func (m *Model) Validate() error {
	m.index()
	if _, ok := m.byID[m.StartID]; !ok {
		return fmt.Errorf("gwt: start vertex %q undefined", m.StartID)
	}
	seen := map[string]bool{}
	for _, v := range m.Vertices {
		if seen[v.ID] {
			return fmt.Errorf("gwt: duplicate vertex %q", v.ID)
		}
		seen[v.ID] = true
	}
	for _, e := range m.Edges {
		if _, ok := m.byID[e.From]; !ok {
			return fmt.Errorf("gwt: edge %q from undefined vertex %q", e.ID, e.From)
		}
		if _, ok := m.byID[e.To]; !ok {
			return fmt.Errorf("gwt: edge %q to undefined vertex %q", e.ID, e.To)
		}
	}
	// Reachability.
	reached := map[string]bool{m.StartID: true}
	stack := []string{m.StartID}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range m.out[v] {
			to := m.Edges[ei].To
			if !reached[to] {
				reached[to] = true
				stack = append(stack, to)
			}
		}
	}
	for _, v := range m.Vertices {
		if !reached[v.ID] {
			return fmt.Errorf("gwt: vertex %q unreachable from start", v.ID)
		}
	}
	return nil
}

// WriteJSON encodes the model as GraphWalker-style JSON.
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadJSON decodes a model written by WriteJSON (or hand-authored in the
// same layout) and validates it.
func ReadJSON(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("gwt: model json: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// RandomModel generates a strongly-connected random model: a Hamiltonian
// ring over n vertices guarantees strong connectivity, plus extra random
// chord edges. Deterministic in rng; used by the E5 experiment.
func RandomModel(name string, n, extraEdges int, rng *rand.Rand) *Model {
	if n < 2 {
		panic("gwt: RandomModel needs n >= 2")
	}
	m := NewModel(name, "v0")
	for i := 1; i < n; i++ {
		m.AddVertex(Vertex{ID: fmt.Sprintf("v%d", i), Name: fmt.Sprintf("state %d", i)})
	}
	eid := 0
	addEdge := func(from, to int) {
		m.AddEdge(Edge{
			ID:   fmt.Sprintf("e%d", eid),
			Name: fmt.Sprintf("step %d", eid),
			From: fmt.Sprintf("v%d", from),
			To:   fmt.Sprintf("v%d", to),
		})
		eid++
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
	}
	for k := 0; k < extraEdges; k++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	return m
}

// Step is one element of an abstract test path: a visited edge with its
// endpoint vertex.
type Step struct {
	EdgeID   string `json:"edge"`
	EdgeName string `json:"name"`
	VertexID string `json:"vertex"`
}

// TestCase is an abstract test: a start-anchored path through the model.
type TestCase struct {
	Name  string `json:"name"`
	Steps []Step `json:"steps"`
}

// EdgeCoverage returns the fraction of model edges covered by the test
// cases.
func EdgeCoverage(m *Model, tcs []TestCase) float64 {
	if len(m.Edges) == 0 {
		return 1
	}
	covered := map[string]bool{}
	for _, tc := range tcs {
		for _, st := range tc.Steps {
			covered[st.EdgeID] = true
		}
	}
	return float64(len(covered)) / float64(len(m.Edges))
}

// VertexCoverage returns the fraction of model vertices visited.
func VertexCoverage(m *Model, tcs []TestCase) float64 {
	if len(m.Vertices) == 0 {
		return 1
	}
	visited := map[string]bool{m.StartID: true}
	for _, tc := range tcs {
		for _, st := range tc.Steps {
			visited[st.VertexID] = true
		}
	}
	return float64(len(visited)) / float64(len(m.Vertices))
}

// TotalSteps sums the lengths of all test cases: the cost measure of the
// E5 experiment.
func TotalSteps(tcs []TestCase) int {
	n := 0
	for _, tc := range tcs {
		n += len(tc.Steps)
	}
	return n
}

// UncoveredEdges lists edge IDs not exercised by the test cases, sorted.
func UncoveredEdges(m *Model, tcs []TestCase) []string {
	covered := map[string]bool{}
	for _, tc := range tcs {
		for _, st := range tc.Steps {
			covered[st.EdgeID] = true
		}
	}
	var out []string
	for _, e := range m.Edges {
		if !covered[e.ID] {
			out = append(out, e.ID)
		}
	}
	sort.Strings(out)
	return out
}
