package gwt

import (
	"math/rand"
	"testing"
)

// Property: on strongly-connected random models, AllEdges yields exactly
// one test case whose step count is within a small factor of the |E|
// lower bound.
func TestAllEdgesEfficiencyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 15; iter++ {
		n := 5 + rng.Intn(30)
		m := RandomModel("m", n, rng.Intn(2*n), rng)
		tcs := AllEdges(m)
		if len(tcs) != 1 {
			t.Fatalf("strongly-connected model should need one test case, got %d", len(tcs))
		}
		steps := TotalSteps(tcs)
		if steps < len(m.Edges) {
			t.Fatalf("steps %d below the |E|=%d floor", steps, len(m.Edges))
		}
		if steps > 4*len(m.Edges) {
			t.Fatalf("steps %d exceed 4x the |E|=%d floor — greedy regressed", steps, len(m.Edges))
		}
	}
}

// Property: every generator's output is a well-formed path: each step's
// edge leaves the previous step's vertex.
func TestGeneratedPathsAreConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := RandomModel("m", 12, 8, rng)
	edgeByID := map[string]Edge{}
	for _, e := range m.Edges {
		edgeByID[e.ID] = e
	}
	check := func(name string, tcs []TestCase) {
		for _, tc := range tcs {
			at := m.StartID
			for i, st := range tc.Steps {
				e, ok := edgeByID[st.EdgeID]
				if !ok {
					t.Fatalf("%s: step %d uses unknown edge %q", name, i, st.EdgeID)
				}
				if e.From != at {
					t.Fatalf("%s: step %d edge %q leaves %q but walker is at %q",
						name, i, e.ID, e.From, at)
				}
				if e.To != st.VertexID {
					t.Fatalf("%s: step %d records vertex %q, edge targets %q",
						name, i, st.VertexID, e.To)
				}
				at = e.To
			}
		}
	}
	check("all-edges", AllEdges(m))
	check("random", RandomWalk(m, rng, StepsAtMost(200)))
	check("weighted", WeightedRandomWalk(m, rng, StepsAtMost(200)))
}

// Property: the scenario-to-model conversion always yields a valid,
// fully-coverable model for valid scenarios.
func TestScenarioModelsAlwaysCoverable(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	words := []string{"alpha", "beta", "gamma", "delta"}
	for iter := 0; iter < 20; iter++ {
		var scs []Scenario
		for s := 0; s < 1+rng.Intn(4); s++ {
			sc := Scenario{
				Name: words[rng.Intn(len(words))] + string(rune('0'+s)),
				When: []string{"when " + words[rng.Intn(len(words))]},
				Then: []string{"then " + words[rng.Intn(len(words))]},
			}
			if rng.Intn(2) == 0 {
				sc.Given = []string{"given " + words[rng.Intn(len(words))]}
			}
			scs = append(scs, sc)
		}
		m, err := ToModel(scs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if EdgeCoverage(m, AllEdges(m)) != 1 {
			t.Fatalf("iter %d: scenario model not fully coverable", iter)
		}
	}
}
