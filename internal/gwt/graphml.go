package gwt

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// GraphML model input: D2.7 notes that GraphWalker accepts models "in Json
// or GraphML"; this reader covers the GraphML subset yEd/GraphWalker
// produce — nodes with label data, directed edges with label data, and an
// optional weight attribute.

type graphmlDoc struct {
	XMLName xml.Name      `xml:"graphml"`
	Graphs  []graphmlBody `xml:"graph"`
}

type graphmlBody struct {
	ID      string        `xml:"id,attr"`
	Default string        `xml:"edgedefault,attr"`
	Nodes   []graphmlNode `xml:"node"`
	Edges   []graphmlEdge `xml:"edge"`
}

type graphmlNode struct {
	ID   string        `xml:"id,attr"`
	Data []graphmlData `xml:"data"`
}

type graphmlEdge struct {
	ID     string        `xml:"id,attr"`
	Source string        `xml:"source,attr"`
	Target string        `xml:"target,attr"`
	Data   []graphmlData `xml:"data"`
}

type graphmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

func dataValue(ds []graphmlData, keys ...string) string {
	for _, d := range ds {
		for _, k := range keys {
			if d.Key == k {
				return strings.TrimSpace(d.Value)
			}
		}
	}
	return ""
}

// ReadGraphML parses a GraphML model. Node/edge labels are taken from
// data elements keyed "label"/"d0"/"description"; missing labels fall back
// to the element ID. The first node is the start vertex unless one is
// labelled "Start" (GraphWalker's convention).
func ReadGraphML(r io.Reader) (*Model, error) {
	var doc graphmlDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("gwt: graphml: %w", err)
	}
	if len(doc.Graphs) == 0 {
		return nil, fmt.Errorf("gwt: graphml: no graph element")
	}
	g := doc.Graphs[0]
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("gwt: graphml: graph has no nodes")
	}

	start := g.Nodes[0].ID
	for _, n := range g.Nodes {
		if strings.EqualFold(dataValue(n.Data, "label", "d0", "description"), "start") {
			start = n.ID
			break
		}
	}
	m := &Model{Name: g.ID, StartID: start}
	for _, n := range g.Nodes {
		name := dataValue(n.Data, "label", "d0", "description")
		if name == "" {
			name = n.ID
		}
		m.AddVertex(Vertex{ID: n.ID, Name: name})
	}
	for i, e := range g.Edges {
		if e.Source == "" || e.Target == "" {
			return nil, fmt.Errorf("gwt: graphml: edge %d missing source/target", i)
		}
		id := e.ID
		if id == "" {
			id = fmt.Sprintf("e%d", i)
		}
		name := dataValue(e.Data, "label", "d1", "description")
		if name == "" {
			name = id
		}
		var weight float64
		if w := dataValue(e.Data, "weight", "d2"); w != "" {
			v, err := strconv.ParseFloat(w, 64)
			if err != nil {
				return nil, fmt.Errorf("gwt: graphml: edge %s: bad weight %q", id, w)
			}
			weight = v
		}
		m.AddEdge(Edge{ID: id, Name: name, From: e.Source, To: e.Target, Weight: weight})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
