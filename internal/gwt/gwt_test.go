package gwt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const sampleFeature = `
# security scenarios
Scenario: lockout after failed logins
  Given a registered user
  And a clean audit log
  When the user fails to log in three times
  Then the account is locked
  And an alert is raised

Scenario: session lock
  When the session is idle for 15 minutes
  Then the terminal locks
`

func TestParseScenarios(t *testing.T) {
	scs, err := ParseScenarios(sampleFeature)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("parsed %d scenarios, want 2", len(scs))
	}
	s := scs[0]
	if s.Name != "lockout after failed logins" {
		t.Errorf("Name = %q", s.Name)
	}
	if len(s.Given) != 2 || len(s.When) != 1 || len(s.Then) != 2 {
		t.Errorf("sections = %d/%d/%d", len(s.Given), len(s.When), len(s.Then))
	}
	if s.Then[1] != "an alert is raised" {
		t.Errorf("And continuation lost: %v", s.Then)
	}
	if len(scs[1].Given) != 0 {
		t.Error("second scenario has no Given")
	}
}

func TestParseScenarioErrors(t *testing.T) {
	bad := []string{
		"Given orphan step",
		"Scenario: x\n  And dangling continuation",
		"Scenario: x\n  nonsense line",
		"Scenario: incomplete\n  Given something", // no When/Then
		"Scenario: nowhen\n  Then outcome",
	}
	for _, text := range bad {
		if _, err := ParseScenarios(text); err == nil {
			t.Errorf("ParseScenarios(%q) should fail", text)
		}
	}
}

func TestParseKeywordWhitespace(t *testing.T) {
	// Regression: splitKeyword only recognized "Keyword<space>", so a tab
	// or run of spaces after the keyword fell through to "unrecognized
	// line", and a bare keyword was reported as garbage instead of an
	// empty step.
	cases := []struct {
		name    string
		text    string
		wantErr string // substring of the error, "" = must parse
		check   func(t *testing.T, scs []Scenario)
	}{
		{
			name: "tab after keyword",
			text: "Scenario: tabs\n\tGiven\tuser exists\n\tWhen\tthey act\n\tThen\tit works",
			check: func(t *testing.T, scs []Scenario) {
				if scs[0].Given[0] != "user exists" {
					t.Errorf("Given = %q, want %q", scs[0].Given[0], "user exists")
				}
			},
		},
		{
			name: "multiple spaces after keyword",
			text: "Scenario: spaces\n  Given   a   user\n  When  stimulus\n  Then  outcome",
			check: func(t *testing.T, scs []Scenario) {
				if scs[0].Given[0] != "a   user" {
					t.Errorf("inner spacing not preserved: %q", scs[0].Given[0])
				}
			},
		},
		{
			name: "mixed tab and space continuations",
			text: "Scenario: mix\n  Given a user\n  And\tanother\n  When x\n  But \t y\n  Then z",
			check: func(t *testing.T, scs []Scenario) {
				if len(scs[0].Given) != 2 || scs[0].Given[1] != "another" {
					t.Errorf("Given = %v", scs[0].Given)
				}
				if len(scs[0].When) != 2 || scs[0].When[1] != "y" {
					t.Errorf("When = %v", scs[0].When)
				}
			},
		},
		{
			name:    "bare Given is an empty step, not an unrecognized line",
			text:    "Scenario: bare\n  Given\n  When x\n  Then y",
			wantErr: "empty Given step",
		},
		{
			name:    "bare When",
			text:    "Scenario: bare\n  Given a\n  When\n  Then y",
			wantErr: "empty When step",
		},
		{
			name:    "keyword with only trailing whitespace",
			text:    "Scenario: bare\n  Given a\n  When x\n  Then \t ",
			wantErr: "empty Then step",
		},
		{
			name:    "bare And continuation",
			text:    "Scenario: bare\n  Given a\n  And\n  When x\n  Then y",
			wantErr: "empty And step",
		},
		{
			name:    "keyword prefix of a word is not a keyword",
			text:    "Scenario: prefix\n  Givenx y",
			wantErr: "unrecognized line",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scs, err := ParseScenarios(tc.text)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, scs)
		})
	}
}

func TestScenarioStringRoundTrip(t *testing.T) {
	scs, err := ParseScenarios(sampleFeature)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseScenarios(scs[0].String() + scs[1].String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(again) != 2 || again[0].Name != scs[0].Name || len(again[0].Then) != 2 {
		t.Errorf("round trip changed scenarios: %+v", again)
	}
}

func TestToModel(t *testing.T) {
	scs, err := ParseScenarios(sampleFeature)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ToModel(scs)
	if err != nil {
		t.Fatal(err)
	}
	// 2 scenarios: one with Given (setup+when+reset = 3 edges), one
	// without (when+reset = 2 edges).
	if len(m.Edges) != 5 {
		t.Errorf("edges = %d, want 5", len(m.Edges))
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	tcs := AllEdges(m)
	if EdgeCoverage(m, tcs) != 1 {
		t.Error("scenario model should be fully coverable")
	}
}

func TestToModelDedupesSetupResetEdges(t *testing.T) {
	// Regression: scenarios sharing an identical Given state used to get
	// one setup_<i> edge each — parallel duplicate start→given edges that
	// inflated all-edges path generation and coverage denominators.
	scs := []Scenario{
		{Name: "a", Given: []string{"a user"}, When: []string{"x"}, Then: []string{"locked"}},
		{Name: "b", Given: []string{"a user"}, When: []string{"y"}, Then: []string{"locked"}},
		{Name: "c", Given: []string{"a user"}, When: []string{"z"}, Then: []string{"alerted"}},
	}
	m, err := ToModel(scs)
	if err != nil {
		t.Fatal(err)
	}
	// One shared setup edge, three distinct when edges, one reset per
	// distinct Then state (locked, alerted) = 6 edges total.
	if len(m.Edges) != 6 {
		t.Fatalf("edges = %d, want 6: %+v", len(m.Edges), m.Edges)
	}
	count := map[string]int{}
	for _, e := range m.Edges {
		count[e.From+"->"+e.To]++
	}
	if n := count["start->given:a user"]; n != 1 {
		t.Errorf("start->given edges = %d, want 1 (setup edges not deduplicated)", n)
	}
	if n := count["then:locked->start"]; n != 1 {
		t.Errorf("then:locked->start edges = %d, want 1 (reset edges not deduplicated)", n)
	}
	// The deduplicated model must stay fully coverable, and the coverage
	// denominator now counts each structural edge once.
	tcs := AllEdges(m)
	if cov := EdgeCoverage(m, tcs); cov != 1 {
		t.Errorf("EdgeCoverage = %v, want 1", cov)
	}
}

func TestModelValidate(t *testing.T) {
	m := NewModel("m", "v0")
	m.AddVertex(Vertex{ID: "v1"})
	m.AddEdge(Edge{ID: "e0", From: "v0", To: "v1"})
	m.AddEdge(Edge{ID: "e1", From: "v1", To: "v0"})
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}

	dup := NewModel("m", "v0")
	dup.AddVertex(Vertex{ID: "v0"})
	if dup.Validate() == nil {
		t.Error("duplicate vertex must be rejected")
	}

	dangling := NewModel("m", "v0")
	dangling.AddEdge(Edge{ID: "e0", From: "v0", To: "ghost"})
	if dangling.Validate() == nil {
		t.Error("edge to undefined vertex must be rejected")
	}

	unreachable := NewModel("m", "v0")
	unreachable.AddVertex(Vertex{ID: "island"})
	if unreachable.Validate() == nil {
		t.Error("unreachable vertex must be rejected")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := RandomModel("m", 5, 3, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != len(m.Edges) || got.StartID != m.StartID {
		t.Error("model changed through JSON round trip")
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("malformed json must error")
	}
}

func TestRandomModelProperties(t *testing.T) {
	m := RandomModel("m", 10, 7, rand.New(rand.NewSource(2)))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Vertices) != 10 || len(m.Edges) != 17 {
		t.Errorf("got %d vertices, %d edges", len(m.Vertices), len(m.Edges))
	}
}

func TestRandomWalkReachesCoverage(t *testing.T) {
	m := RandomModel("m", 8, 5, rand.New(rand.NewSource(3)))
	tcs := RandomWalk(m, rand.New(rand.NewSource(4)), EdgeCoverageAtLeast(1.0))
	if cov := EdgeCoverage(m, tcs); cov != 1 {
		t.Errorf("coverage = %.2f, want 1.0", cov)
	}
	if len(UncoveredEdges(m, tcs)) != 0 {
		t.Error("UncoveredEdges should be empty at full coverage")
	}
}

func TestRandomWalkStepBudget(t *testing.T) {
	m := RandomModel("m", 8, 5, rand.New(rand.NewSource(3)))
	tcs := RandomWalk(m, rand.New(rand.NewSource(4)), StepsAtMost(10))
	if TotalSteps(tcs) != 10 {
		t.Errorf("TotalSteps = %d, want 10", TotalSteps(tcs))
	}
}

func TestWeightedRandomWalkBias(t *testing.T) {
	// Two parallel edges from v0 to v1; weight 9:1. The heavy edge should
	// be taken far more often.
	m := NewModel("m", "v0")
	m.AddVertex(Vertex{ID: "v1"})
	m.AddEdge(Edge{ID: "heavy", From: "v0", To: "v1", Weight: 9})
	m.AddEdge(Edge{ID: "light", From: "v0", To: "v1", Weight: 1})
	m.AddEdge(Edge{ID: "back", From: "v1", To: "v0"})
	tcs := WeightedRandomWalk(m, rand.New(rand.NewSource(5)), StepsAtMost(2000))
	heavy, light := 0, 0
	for _, st := range tcs[0].Steps {
		switch st.EdgeID {
		case "heavy":
			heavy++
		case "light":
			light++
		}
	}
	if heavy < 5*light {
		t.Errorf("weight bias not honored: heavy=%d light=%d", heavy, light)
	}
}

func TestAllEdgesFullCoverage(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := RandomModel("m", 12, 10, rand.New(rand.NewSource(seed)))
		tcs := AllEdges(m)
		if cov := EdgeCoverage(m, tcs); cov != 1 {
			t.Errorf("seed %d: coverage = %.2f, want 1.0", seed, cov)
		}
		if VertexCoverage(m, tcs) != 1 {
			t.Errorf("seed %d: vertex coverage incomplete", seed)
		}
	}
}

func TestAllEdgesBeatsRandomWalk(t *testing.T) {
	m := RandomModel("m", 20, 15, rand.New(rand.NewSource(6)))
	all := TotalSteps(AllEdges(m))
	random := TotalSteps(RandomWalk(m, rand.New(rand.NewSource(7)), EdgeCoverageAtLeast(1.0)))
	if all >= random {
		t.Errorf("all-edges (%d steps) should cover with fewer steps than random walk (%d)", all, random)
	}
	// All-edges cannot beat the information-theoretic floor.
	if all < len(m.Edges) {
		t.Errorf("all-edges used %d steps for %d edges — impossible", all, len(m.Edges))
	}
}

func TestAllEdgesOnDeadEndModel(t *testing.T) {
	// start -> a -> deadEnd, start -> b: needs multiple test cases.
	m := NewModel("m", "start")
	m.AddVertex(Vertex{ID: "a"})
	m.AddVertex(Vertex{ID: "dead"})
	m.AddVertex(Vertex{ID: "b"})
	m.AddEdge(Edge{ID: "e0", From: "start", To: "a"})
	m.AddEdge(Edge{ID: "e1", From: "a", To: "dead"})
	m.AddEdge(Edge{ID: "e2", From: "start", To: "b"})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	tcs := AllEdges(m)
	if EdgeCoverage(m, tcs) != 1 {
		t.Fatalf("coverage = %.2f", EdgeCoverage(m, tcs))
	}
	if len(tcs) < 2 {
		t.Errorf("dead-end model needs >= 2 test cases, got %d", len(tcs))
	}
}

const signalsXML = `<signals>
  <signal name="login_attempts" type="int" unit="count" min="0" max="10"/>
  <signal name="locked" type="bool" unit="" min="0" max="1"/>
</signals>`

func TestReadSignalsXML(t *testing.T) {
	sigs, err := ReadSignalsXML(strings.NewReader(signalsXML))
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 2 || sigs[0].Name != "login_attempts" || sigs[0].Max != 10 {
		t.Errorf("signals = %+v", sigs)
	}
	if _, err := ReadSignalsXML(strings.NewReader("<signals><signal/></signals>")); err == nil {
		t.Error("unnamed signal must error")
	}
	if _, err := ReadSignalsXML(strings.NewReader("not xml")); err == nil {
		t.Error("garbage must error")
	}
}

func TestAbstractTestsJSONRoundTrip(t *testing.T) {
	tcs := []TestCase{{Name: "t1", Steps: []Step{{EdgeID: "e0", EdgeName: "fail login", VertexID: "v1"}}}}
	var buf bytes.Buffer
	if err := WriteAbstractTests(&buf, tcs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAbstractTests(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Steps[0].EdgeName != "fail login" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := ReadAbstractTests(strings.NewReader("[{")); err == nil {
		t.Error("malformed json must error")
	}
}

func TestConcretization(t *testing.T) {
	sigs, err := ReadSignalsXML(strings.NewReader(signalsXML))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewTestGenerator(sigs, []MappingRule{
		{Pattern: `^fail login (\d+) times$`, Template: `inject ${signal:login_attempts} = $1`},
		{Pattern: `^check locked$`, Template: `expect ${signal:locked} == 1`},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	tcs := []TestCase{{Name: "lockout", Steps: []Step{
		{EdgeID: "e0", EdgeName: "fail login 3 times", VertexID: "v1"},
		{EdgeID: "e1", EdgeName: "check locked", VertexID: "v2"},
	}}}
	scripts, err := gen.Concretize(tcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 1 || len(scripts[0].Lines) != 2 {
		t.Fatalf("scripts = %+v", scripts)
	}
	if scripts[0].Lines[0] != "inject login_attempts[int 0..10] = 3" {
		t.Errorf("line 0 = %q", scripts[0].Lines[0])
	}
	if scripts[0].Lines[1] != "expect locked[bool 0..1] == 1" {
		t.Errorf("line 1 = %q", scripts[0].Lines[1])
	}
}

func TestConcretizationErrors(t *testing.T) {
	if _, err := NewTestGenerator(nil, []MappingRule{{Pattern: "("}}, ""); err == nil {
		t.Error("bad regexp must error")
	}
	gen, err := NewTestGenerator(nil, []MappingRule{
		{Pattern: "ghostsig", Template: "use ${signal:ghost}"},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.ConcretizeStep(Step{EdgeName: "ghostsig"}); err == nil {
		t.Error("unknown signal reference must error")
	}
	if _, err := gen.ConcretizeStep(Step{EdgeName: "unmatched"}); err == nil {
		t.Error("unmatched step without fallback must error")
	}
	fb, err := NewTestGenerator(nil, nil, "step %q has no mapping")
	if err != nil {
		t.Fatal(err)
	}
	line, err := fb.ConcretizeStep(Step{EdgeName: "anything"})
	if err != nil || !strings.Contains(line, "anything") {
		t.Errorf("fallback line = %q, %v", line, err)
	}
}

func TestScriptCreatorRender(t *testing.T) {
	var buf bytes.Buffer
	c := ScriptCreator{Header: []string{"#!/bin/sh", "set -e"}, LinePrefix: "run "}
	err := c.Render(&buf, Script{Name: "t1", Lines: []string{"step one", "step two"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# test case: t1", "#!/bin/sh", "run step one", "run step two"} {
		if !strings.Contains(out, want) {
			t.Errorf("script missing %q:\n%s", want, out)
		}
	}
}

func TestEndToEndScenarioToScript(t *testing.T) {
	scs, err := ParseScenarios(sampleFeature)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ToModel(scs)
	if err != nil {
		t.Fatal(err)
	}
	tcs := AllEdges(m)
	gen, err := NewTestGenerator(nil, nil, "do %q")
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := gen.Concretize(tcs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range scripts {
		total += len(s.Lines)
	}
	if total != TotalSteps(tcs) {
		t.Errorf("script lines %d != steps %d", total, TotalSteps(tcs))
	}
}
