package gwt

import (
	"math/rand"
	"strings"
	"testing"
)

func coverageModel() (*Model, *RequirementMap) {
	m := NewModel("m", "v0")
	m.AddVertex(Vertex{ID: "v1"})
	m.AddVertex(Vertex{ID: "v2"})
	m.AddEdge(Edge{ID: "login", From: "v0", To: "v1"})
	m.AddEdge(Edge{ID: "escalate", From: "v1", To: "v2"})
	m.AddEdge(Edge{ID: "logout", From: "v2", To: "v0"})
	rm := NewRequirementMap().
		Link("login", "REQ-AUTH").
		Link("escalate", "REQ-PRIV").
		Link("logout", "REQ-AUTH").
		Declare("REQ-ORPHAN")
	return m, rm
}

func TestRequirementCoverageFull(t *testing.T) {
	m, rm := coverageModel()
	tcs := AllEdges(m)
	covered := rm.Covered(tcs)
	if len(covered) != 2 || covered[0] != "REQ-AUTH" || covered[1] != "REQ-PRIV" {
		t.Errorf("Covered = %v", covered)
	}
	// 2 of 3 known requirements (REQ-ORPHAN has no edge).
	if got := rm.Coverage(tcs); got < 0.66 || got > 0.67 {
		t.Errorf("Coverage = %v, want 2/3", got)
	}
	unc := rm.Uncovered(tcs)
	if len(unc) != 1 || unc[0] != "REQ-ORPHAN" {
		t.Errorf("Uncovered = %v", unc)
	}
}

func TestRequirementCoveragePartial(t *testing.T) {
	m, rm := coverageModel()
	// A suite that only takes the first edge.
	tcs := []TestCase{{Steps: []Step{{EdgeID: "login", VertexID: "v1"}}}}
	covered := rm.Covered(tcs)
	if len(covered) != 1 || covered[0] != "REQ-AUTH" {
		t.Errorf("Covered = %v", covered)
	}
	if len(rm.Uncovered(tcs)) != 2 {
		t.Errorf("Uncovered = %v", rm.Uncovered(tcs))
	}
	_ = m
}

func TestRequirementMatrix(t *testing.T) {
	m, rm := coverageModel()
	out := rm.Matrix(AllEdges(m))
	for _, want := range []string{"REQ-AUTH", "login,logout", "REQ-ORPHAN", "false", "requirement coverage: 67%"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyRequirementMap(t *testing.T) {
	rm := NewRequirementMap()
	if rm.Coverage(nil) != 1 {
		t.Error("empty map is vacuously covered")
	}
	if len(rm.Requirements()) != 0 {
		t.Error("no requirements expected")
	}
}

// Property: edge coverage of 100% implies requirement coverage of 100%
// for maps where every requirement is linked to at least one edge.
func TestFullEdgeCoverageImpliesLinkedReqCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 10; iter++ {
		m := RandomModel("m", 6+rng.Intn(6), 5, rng)
		rm := NewRequirementMap()
		for i, e := range m.Edges {
			rm.Link(e.ID, []string{"REQ-A", "REQ-B", "REQ-C"}[i%3])
		}
		tcs := AllEdges(m)
		if EdgeCoverage(m, tcs) != 1 {
			t.Fatal("all-edges must fully cover")
		}
		if rm.Coverage(tcs) != 1 {
			t.Fatalf("iter %d: requirement coverage %.2f", iter, rm.Coverage(tcs))
		}
	}
}
