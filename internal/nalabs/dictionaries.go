// Package nalabs reimplements NALABS (NAtural LAnguage Bad Smells), the
// MDH requirements-quality tool of VeriDevOps D2.7: dictionary-based
// metrics that flag smells in natural-language requirements (vagueness,
// optionality, subjectivity, weakness, referenceability, over-complexity,
// readability), an analyzer with per-metric thresholds, CSV corpus input
// mirroring the tool's "REQ ID / Text column" Excel workflow, and a seeded
// smelly-corpus generator used by the E2 benchmark to measure
// precision/recall of the smell detectors.
package nalabs

// The phrase dictionaries condense the indicator lists used by NALABS and
// its ancestors (the ARM/QuARS "quality indicators" literature): each
// metric counts occurrences of its dictionary in the requirement text.

// ConjunctionWords indicate compound requirements that should be split.
var ConjunctionWords = []string{
	"and", "or", "but", "as well as", "whereas", "also", "on the other hand",
	"otherwise",
}

// ContinuanceWords follow an imperative and introduce nested lists of
// lower-level requirements.
var ContinuanceWords = []string{
	"below", "as follows", "following", "listed", "in particular", "support",
	"and more", "such as",
}

// ImperativeWords are the command words of well-formed requirements; their
// *absence* is the smell.
var ImperativeWords = []string{
	"shall", "must", "is required to", "are applicable", "are to",
	"responsible for", "will", "should",
}

// OptionalityWords give the developer latitude to satisfy the statement in
// more than one way.
var OptionalityWords = []string{
	"can", "may", "optionally", "as desired", "either", "eventually",
	"if appropriate", "if needed", "in case of", "possibly", "probably",
	"when necessary",
}

// SubjectivityWords express personal opinion or unverifiable comparison.
var SubjectivityWords = []string{
	"similar", "better", "worse", "best", "worst", "take into account",
	"as far as possible", "as much as practicable", "easy", "strong",
	"good", "bad", "useful", "significant", "adequate enough",
}

// WeaknessWords introduce uncertainty and room for multiple
// interpretations.
var WeaknessWords = []string{
	"adequate", "as appropriate", "be able to", "be capable of",
	"capability of", "capability to", "effective", "as required",
	"normal", "provide for", "timely", "easy to", "if practical",
	"to the extent possible", "tbd", "tba", "etc",
}

// VaguenessWords are the classic vague qualifiers.
var VaguenessWords = []string{
	"flexible", "fault tolerant", "high fidelity", "adaptable", "rapid",
	"quick", "user friendly", "user-friendly", "suitable", "sufficient",
	"appropriate", "efficient", "robust", "seamless", "transparent",
	"versatile", "approximately", "some", "several", "many", "minimal",
}

// ReferencePhrases indicate nesting / required external reading.
var ReferencePhrases = []string{
	"see ", "refer to", "according to", "as defined in", "as specified in",
	"in accordance with", "described in", "conform to", "compliant with",
	"section ", "figure ", "table ", "annex ", "appendix ",
}
