package nalabs

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// ReadCSV loads a requirements corpus from CSV, taking the requirement ID
// and text from the given zero-based columns — the programmatic equivalent
// of the "choose the REQ ID and Text column" step in the NALABS settings
// dialog. A header row is detected by a non-empty idCol cell equal to "id"
// (case-insensitive) and skipped.
func ReadCSV(r io.Reader, idCol, textCol int) ([]Requirement, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []Requirement
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("nalabs: csv read: %w", err)
		}
		line++
		if idCol >= len(rec) || textCol >= len(rec) {
			return nil, fmt.Errorf("nalabs: line %d has %d columns, need id=%d text=%d",
				line, len(rec), idCol, textCol)
		}
		if line == 1 && strings.EqualFold(strings.TrimSpace(rec[idCol]), "id") {
			continue
		}
		out = append(out, Requirement{ID: rec[idCol], Text: rec[textCol]})
	}
}

// WriteCSV stores a corpus in the two-column format ReadCSV accepts.
func WriteCSV(w io.Writer, reqs []Requirement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "text"}); err != nil {
		return err
	}
	for _, r := range reqs {
		if err := cw.Write([]string{r.ID, r.Text}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Seeded corpus generation for the E2 experiment: clean security
// requirements built from templates, with smells injected at a controlled
// rate and recorded as ground truth.

var cleanTemplates = []string{
	"The system shall encrypt stored passwords with SHA512.",
	"The gateway shall reject login attempts after three failures.",
	"The audit service shall record every privilege escalation.",
	"The operating system shall lock the session after 15 minutes of inactivity.",
	"The server shall disable the NIS service at startup.",
	"The application shall check TLS certificates before it opens a session.",
	"The monitor shall raise an alarm within 5 seconds of intrusion detection.",
	"The device shall require multifactor authentication for remote access.",
}

// smellInjectors mutate a clean requirement to exhibit one named smell.
var smellInjectors = []struct {
	Smell  string
	Mutate func(string) string
}{
	{SmellOptionality, func(s string) string {
		return strings.Replace(s, "shall", "may, if needed,", 1)
	}},
	{SmellWeakness, func(s string) string {
		return strings.TrimSuffix(s, ".") + " in a timely manner, as appropriate."
	}},
	{SmellVagueness, func(s string) string {
		return strings.TrimSuffix(s, ".") + " using a suitable and efficient mechanism."
	}},
	{SmellSubjectivity, func(s string) string {
		return strings.TrimSuffix(s, ".") + " which is better and easy to use."
	}},
	{SmellReferences, func(s string) string {
		return strings.TrimSuffix(s, ".") + " as defined in section 4.2, in accordance with annex B, described in table 3."
	}},
	{SmellNonImperative, func(s string) string {
		s = strings.Replace(s, " shall ", " ", 1)
		return s
	}},
	{SmellConjunctions, func(s string) string {
		return strings.TrimSuffix(s, ".") +
			" and log the event and notify the operator or the administrator and archive the record."
	}},
}

// LabelledRequirement pairs a generated requirement with its injected
// ground-truth smell ("" for clean).
type LabelledRequirement struct {
	Requirement
	InjectedSmell string
}

// GenerateCorpus produces n requirements, a fraction smellRate of which
// have exactly one injected smell (round-robin over the smell kinds).
// Deterministic in rng.
func GenerateCorpus(n int, smellRate float64, rng *rand.Rand) []LabelledRequirement {
	out := make([]LabelledRequirement, 0, n)
	smellIdx := 0
	for i := 0; i < n; i++ {
		base := cleanTemplates[rng.Intn(len(cleanTemplates))]
		lr := LabelledRequirement{
			Requirement: Requirement{ID: fmt.Sprintf("REQ-%04d", i), Text: base},
		}
		if rng.Float64() < smellRate {
			inj := smellInjectors[smellIdx%len(smellInjectors)]
			smellIdx++
			lr.Text = inj.Mutate(base)
			lr.InjectedSmell = inj.Smell
		}
		out = append(out, lr)
	}
	return out
}

// Score compares analyzer verdicts against the generator's ground truth
// and returns precision and recall of the binary smelly/clean decision.
func Score(an *Analyzer, corpus []LabelledRequirement) (precision, recall float64) {
	tp, fp, fn := 0, 0, 0
	for _, lr := range corpus {
		got := an.Analyze(lr.Requirement).Smelly()
		want := lr.InjectedSmell != ""
		switch {
		case got && want:
			tp++
		case got && !want:
			fp++
		case !got && want:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	} else {
		precision = 1
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	} else {
		recall = 1
	}
	return
}

// ScorePerSmell returns recall per injected smell kind: of the requirements
// seeded with smell k, how many did the analyzer flag with that same smell.
func ScorePerSmell(an *Analyzer, corpus []LabelledRequirement) map[string]float64 {
	hit := map[string]int{}
	total := map[string]int{}
	for _, lr := range corpus {
		if lr.InjectedSmell == "" {
			continue
		}
		total[lr.InjectedSmell]++
		if an.Analyze(lr.Requirement).Has(lr.InjectedSmell) {
			hit[lr.InjectedSmell]++
		}
	}
	out := make(map[string]float64, len(total))
	for k, n := range total {
		out[k] = float64(hit[k]) / float64(n)
	}
	return out
}
