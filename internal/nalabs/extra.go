package nalabs

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Additional indicator metrics from the ARM/QuARS family that the NALABS
// repository tracks alongside the core set.

// IncompletenessWords mark unfinished specification fragments.
var IncompletenessWords = []string{
	"tbd", "tbs", "tba", "tbr", "to be determined", "to be specified",
	"to be added", "to be resolved", "not defined", "not yet defined",
	"as a minimum", "no practical limit",
}

// DirectiveWords point the reader at material outside the requirement
// statement itself.
var DirectiveWords = []string{
	"e.g", "i.e", "for example", "figure", "table", "note:", "note that",
}

// Incompleteness counts unfinished-specification markers.
func Incompleteness() Metric { return NewCountMetric("incompleteness", IncompletenessWords) }

// Directives counts pointers to external material.
func Directives() Metric { return NewCountMetric("directives", DirectiveWords) }

// ExtendedMetrics returns AllMetrics plus the additional indicators.
func ExtendedMetrics() []Metric {
	return append(AllMetrics(), Incompleteness(), Directives())
}

// SmellIncomplete flags unfinished specifications (extended analyzer only).
const SmellIncomplete = "incomplete"

// NewExtendedAnalyzer returns an analyzer with the extended metric suite;
// it additionally flags the incompleteness smell (any TBD-style marker).
func NewExtendedAnalyzer() *Analyzer {
	return &Analyzer{Metrics: ExtendedMetrics(), Thresholds: DefaultThresholds()}
}

// AnalyzeExtended runs the extended analyzer semantics: the base smells
// plus incompleteness.
func (an *Analyzer) AnalyzeExtended(r Requirement) Analysis {
	a := an.Analyze(r)
	if v, ok := a.Values["incompleteness"]; ok && v > 0 {
		a.Smells = append(a.Smells, SmellIncomplete)
		sortStrings(a.Smells)
	}
	return a
}

func sortStrings(s []string) {
	sort.Strings(s)
}

// WriteResultsCSV stores a report as CSV: one row per requirement with
// every metric value and the triggered smells — the export the NALABS GUI
// offers for downstream processing.
func WriteResultsCSV(w io.Writer, an *Analyzer, rep Report) error {
	cw := csv.NewWriter(w)
	names := metricNames(an)
	header := append([]string{"id"}, names...)
	header = append(header, "smells")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, a := range rep.Analyses {
		row := make([]string, 0, len(header))
		row = append(row, a.ID)
		for _, n := range names {
			row = append(row, strconv.FormatFloat(a.Values[n], 'g', -1, 64))
		}
		row = append(row, joinSmells(a.Smells))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func metricNames(an *Analyzer) []string {
	names := make([]string, 0, len(an.Metrics))
	for _, m := range an.Metrics {
		names = append(names, m.Name())
	}
	sort.Strings(names)
	return names
}

func joinSmells(smells []string) string {
	out := ""
	for i, s := range smells {
		if i > 0 {
			out += ";"
		}
		out += s
	}
	return out
}

// TopOffenders returns the n smelliest requirements (most smells first,
// ties by ID) — the triage view of the GUI.
func (r Report) TopOffenders(n int) []Analysis {
	sorted := make([]Analysis, len(r.Analyses))
	copy(sorted, r.Analyses)
	sort.SliceStable(sorted, func(i, j int) bool {
		if len(sorted[i].Smells) != len(sorted[j].Smells) {
			return len(sorted[i].Smells) > len(sorted[j].Smells)
		}
		return sorted[i].ID < sorted[j].ID
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// Summary renders corpus-level statistics: smell histogram plus mean
// readability and size.
func (r Report) Summary() string {
	h := r.SmellHistogram()
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("requirements: %d, smelly: %d\n", len(r.Analyses), r.SmellyCount())
	for _, k := range keys {
		out += fmt.Sprintf("  %-16s %d\n", k, h[k])
	}
	var ari, words float64
	for _, a := range r.Analyses {
		ari += a.Values["readability"]
		words += a.Values["size_words"]
	}
	if n := float64(len(r.Analyses)); n > 0 {
		out += fmt.Sprintf("mean ARI: %.1f, mean words: %.1f\n", ari/n, words/n)
	}
	return out
}
