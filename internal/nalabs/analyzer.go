package nalabs

import (
	"fmt"
	"sort"
	"strings"
)

// Requirement is one natural-language requirement: the (REQ ID, Text)
// column pair the NALABS GUI asks the user to select in its Excel view.
type Requirement struct {
	ID   string
	Text string
}

// Smell names reported by the analyzer.
const (
	SmellConjunctions  = "conjunctions"
	SmellOptionality   = "optionality"
	SmellSubjectivity  = "subjectivity"
	SmellWeakness      = "weakness"
	SmellVagueness     = "vagueness"
	SmellReferences    = "references"
	SmellNonImperative = "non_imperative"
	SmellUnreadable    = "unreadable"
	SmellOversized     = "oversized"
)

// Thresholds configures when a metric value is flagged as a smell.
type Thresholds struct {
	// MaxConjunctions flags compound requirements (> value).
	MaxConjunctions float64
	// MaxOptionality, MaxSubjectivity, MaxWeakness, MaxVagueness and
	// MaxReferences flag dictionary hits (> value).
	MaxOptionality  float64
	MaxSubjectivity float64
	MaxWeakness     float64
	MaxVagueness    float64
	MaxReferences   float64
	// MinImperatives flags requirements without command words (< value).
	MinImperatives float64
	// MaxARI flags hard-to-read requirements (> value).
	MaxARI float64
	// MaxWords flags over-complex requirements (> value).
	MaxWords float64
}

// DefaultThresholds are the analyzer defaults, tuned so a well-formed
// single-sentence "shall" requirement passes cleanly.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxConjunctions: 2,
		MaxOptionality:  0,
		MaxSubjectivity: 0,
		MaxWeakness:     0,
		MaxVagueness:    0,
		MaxReferences:   1,
		MinImperatives:  1,
		MaxARI:          16,
		MaxWords:        50,
	}
}

// Analysis is the per-requirement result.
type Analysis struct {
	ID string
	// Values holds every metric value keyed by metric name.
	Values map[string]float64
	// Smells lists the triggered smell names, sorted.
	Smells []string
}

// Smelly reports whether any smell triggered.
func (a Analysis) Smelly() bool { return len(a.Smells) > 0 }

// Has reports whether the named smell triggered.
func (a Analysis) Has(smell string) bool {
	for _, s := range a.Smells {
		if s == smell {
			return true
		}
	}
	return false
}

// Analyzer evaluates the NALABS metric suite against thresholds.
type Analyzer struct {
	Metrics    []Metric
	Thresholds Thresholds
}

// NewAnalyzer returns an analyzer with the full metric suite and default
// thresholds.
func NewAnalyzer() *Analyzer {
	return &Analyzer{Metrics: AllMetrics(), Thresholds: DefaultThresholds()}
}

// Analyze measures one requirement and derives its smells.
func (an *Analyzer) Analyze(r Requirement) Analysis {
	a := Analysis{ID: r.ID, Values: make(map[string]float64, len(an.Metrics))}
	for _, m := range an.Metrics {
		a.Values[m.Name()] = m.Measure(r.Text)
	}
	t := an.Thresholds
	flag := func(cond bool, smell string) {
		if cond {
			a.Smells = append(a.Smells, smell)
		}
	}
	flag(a.Values["conjunctions"] > t.MaxConjunctions, SmellConjunctions)
	flag(a.Values["optionality"] > t.MaxOptionality, SmellOptionality)
	flag(a.Values["subjectivity"] > t.MaxSubjectivity, SmellSubjectivity)
	flag(a.Values["weakness"] > t.MaxWeakness, SmellWeakness)
	flag(a.Values["vagueness"] > t.MaxVagueness, SmellVagueness)
	flag(a.Values["references"] > t.MaxReferences, SmellReferences)
	flag(a.Values["imperatives"] < t.MinImperatives, SmellNonImperative)
	flag(a.Values["readability"] > t.MaxARI, SmellUnreadable)
	flag(a.Values["size_words"] > t.MaxWords, SmellOversized)
	sort.Strings(a.Smells)
	return a
}

// Report is the corpus-level result.
type Report struct {
	Analyses []Analysis
}

// AnalyzeAll runs the analyzer over a corpus.
func (an *Analyzer) AnalyzeAll(reqs []Requirement) Report {
	rep := Report{Analyses: make([]Analysis, 0, len(reqs))}
	for _, r := range reqs {
		rep.Analyses = append(rep.Analyses, an.Analyze(r))
	}
	return rep
}

// SmellyCount returns how many requirements triggered at least one smell.
func (r Report) SmellyCount() int {
	n := 0
	for _, a := range r.Analyses {
		if a.Smelly() {
			n++
		}
	}
	return n
}

// SmellHistogram returns how many requirements triggered each smell.
func (r Report) SmellHistogram() map[string]int {
	h := map[string]int{}
	for _, a := range r.Analyses {
		for _, s := range a.Smells {
			h[s]++
		}
	}
	return h
}

// String renders a summary table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %s\n", "REQ", "SMELLY", "SMELLS")
	for _, a := range r.Analyses {
		fmt.Fprintf(&b, "%-12s %-8v %s\n", a.ID, a.Smelly(), strings.Join(a.Smells, ","))
	}
	fmt.Fprintf(&b, "total: %d/%d smelly\n", r.SmellyCount(), len(r.Analyses))
	return b.String()
}
