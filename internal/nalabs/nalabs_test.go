package nalabs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCountOccurrences(t *testing.T) {
	cases := []struct {
		text string
		dict []string
		want int
	}{
		{"The system may or may not respond", []string{"may"}, 2},
		{"maybe not", []string{"may"}, 0}, // word boundary
		{"as appropriate, do it", []string{"as appropriate"}, 1},
		{"And capital letters AND mixed", []string{"and"}, 2},
		{"see section 4 and annex B", []string{"see ", "section ", "annex "}, 3},
		{"", []string{"x"}, 0},
		{"x", nil, 0},
		{"punctuation, (bracketed) words!", []string{"bracketed"}, 1},
	}
	for _, c := range cases {
		if got := CountOccurrences(c.text, c.dict); got != c.want {
			t.Errorf("CountOccurrences(%q, %v) = %d, want %d", c.text, c.dict, got, c.want)
		}
	}
}

func TestWordsAndSentences(t *testing.T) {
	w := Words("The system shall lock, after 15 minutes.")
	if len(w) != 7 {
		t.Errorf("Words = %v (%d), want 7", w, len(w))
	}
	if SentenceCount("One. Two! Three?") != 3 {
		t.Error("sentence count wrong")
	}
	if SentenceCount("no terminator") != 1 {
		t.Error("non-empty text has at least one sentence")
	}
	if SentenceCount("") != 1 {
		t.Error("degenerate input should not divide by zero")
	}
}

func TestDictionaryMetrics(t *testing.T) {
	cases := []struct {
		m    Metric
		text string
		want float64
	}{
		{Conjunctions(), "log the event and notify or archive", 2},
		{Optionality(), "the system may respond if needed", 2},
		{Subjectivity(), "a better and easy interface", 2},
		{Weakness(), "adequate performance in a timely manner", 2},
		{Vagueness(), "a suitable, efficient and robust design", 3},
		{References(), "as defined in section 3, see table 2", 4},
		{Imperatives(), "the system shall and must respond", 2},
		{Continuances(), "requirements listed below", 2},
	}
	for _, c := range cases {
		if got := c.m.Measure(c.text); got != c.want {
			t.Errorf("%s(%q) = %v, want %v", c.m.Name(), c.text, got, c.want)
		}
	}
}

func TestReadabilityARI(t *testing.T) {
	simple := "The cat sat."
	hard := "Notwithstanding aforementioned considerations, interdepartmental synchronization methodologies necessitate comprehensive organizational restructuring."
	ari := Readability()
	if ari.Measure(simple) >= ari.Measure(hard) {
		t.Error("ARI must rank the hard sentence above the simple one")
	}
	if ari.Measure("") != 0 {
		t.Error("ARI of empty text should be 0")
	}
	d27 := ReadabilityD27()
	if d27.Measure(simple) >= d27.Measure(hard) {
		t.Error("D2.7 ARI variant must rank consistently")
	}
	if d27.Name() != "readability" {
		t.Error("metric name mismatch")
	}
}

func TestSizeMetrics(t *testing.T) {
	text := "One two three. Four five."
	if SizeWords().Measure(text) != 5 {
		t.Errorf("words = %v", SizeWords().Measure(text))
	}
	if SizeChars().Measure(text) != float64(len(text)) {
		t.Error("chars mismatch")
	}
	if SizeSentences().Measure(text) != 2 {
		t.Error("sentences mismatch")
	}
}

func TestNVRatio(t *testing.T) {
	nv := NVRatio()
	nouny := "The Authentication Management configuration requires verification of the organization"
	verby := "do it now then stop"
	if nv.Measure(nouny) <= nv.Measure(verby) {
		t.Error("noun-heavy text must score higher")
	}
	if nv.Measure("") != 0 {
		t.Error("empty text should be 0")
	}
}

func TestAnalyzerCleanRequirement(t *testing.T) {
	an := NewAnalyzer()
	a := an.Analyze(Requirement{ID: "R1", Text: "The system shall encrypt stored passwords with SHA512."})
	if a.Smelly() {
		t.Errorf("clean requirement flagged: %v", a.Smells)
	}
	if len(a.Values) != len(AllMetrics()) {
		t.Errorf("Values has %d entries, want %d", len(a.Values), len(AllMetrics()))
	}
}

func TestAnalyzerFlagsEachSmell(t *testing.T) {
	an := NewAnalyzer()
	cases := []struct {
		text  string
		smell string
	}{
		{"The system may, if needed, respond to intrusion.", SmellOptionality},
		{"The system shall respond in a timely manner, as appropriate.", SmellWeakness},
		{"The system shall use a suitable and efficient mechanism.", SmellVagueness},
		{"The system shall offer a better and easy interface.", SmellSubjectivity},
		{"The system shall comply as defined in section 1, described in annex A.", SmellReferences},
		{"The system encrypts passwords.", SmellNonImperative},
		{"The system shall log and alert and archive and rotate or purge records.", SmellConjunctions},
	}
	for _, c := range cases {
		a := an.Analyze(Requirement{ID: "R", Text: c.text})
		if !a.Has(c.smell) {
			t.Errorf("%q: expected smell %s, got %v", c.text, c.smell, a.Smells)
		}
	}
}

func TestAnalyzerOversized(t *testing.T) {
	an := NewAnalyzer()
	long := "The system shall " + strings.Repeat("really ", 60) + "work."
	a := an.Analyze(Requirement{ID: "R", Text: long})
	if !a.Has(SmellOversized) {
		t.Errorf("60+-word requirement should be oversized: %v", a.Smells)
	}
}

func TestAnalysisHasAndSmellyAgree(t *testing.T) {
	a := Analysis{Smells: []string{SmellWeakness}}
	if !a.Smelly() || !a.Has(SmellWeakness) || a.Has(SmellVagueness) {
		t.Error("Has/Smelly inconsistent")
	}
}

func TestReportAggregation(t *testing.T) {
	an := NewAnalyzer()
	rep := an.AnalyzeAll([]Requirement{
		{ID: "R1", Text: "The system shall encrypt stored passwords with SHA512."},
		{ID: "R2", Text: "The system may respond."},
	})
	if rep.SmellyCount() != 1 {
		t.Errorf("SmellyCount = %d, want 1", rep.SmellyCount())
	}
	h := rep.SmellHistogram()
	if h[SmellOptionality] != 1 {
		t.Errorf("histogram = %v", h)
	}
	s := rep.String()
	if !strings.Contains(s, "R2") || !strings.Contains(s, "total: 1/2 smelly") {
		t.Errorf("report:\n%s", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	reqs := []Requirement{
		{ID: "R1", Text: "The system shall do X."},
		{ID: "R2", Text: "Text, with comma and \"quotes\"."},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Text != reqs[1].Text {
		t.Errorf("round trip = %+v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("only-one-column\n"), 0, 1); err == nil {
		t.Error("missing text column must error")
	}
	if _, err := ReadCSV(strings.NewReader("a,\"unterminated\n"), 0, 1); err == nil {
		t.Error("malformed csv must error")
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(50, 0.4, rand.New(rand.NewSource(1)))
	b := GenerateCorpus(50, 0.4, rand.New(rand.NewSource(1)))
	if len(a) != 50 || len(b) != 50 {
		t.Fatal("wrong corpus size")
	}
	for i := range a {
		if a[i].Text != b[i].Text || a[i].InjectedSmell != b[i].InjectedSmell {
			t.Fatal("generator must be deterministic in the seed")
		}
	}
	smelly := 0
	for _, r := range a {
		if r.InjectedSmell != "" {
			smelly++
		}
	}
	if smelly == 0 || smelly == 50 {
		t.Errorf("smell rate 0.4 produced %d/50 smelly", smelly)
	}
}

func TestScoreOnSeededCorpus(t *testing.T) {
	an := NewAnalyzer()
	corpus := GenerateCorpus(400, 0.5, rand.New(rand.NewSource(2)))
	precision, recall := Score(an, corpus)
	if precision < 0.95 {
		t.Errorf("precision = %.3f, want >= 0.95 (clean templates must not be flagged)", precision)
	}
	if recall < 0.95 {
		t.Errorf("recall = %.3f, want >= 0.95 (injected smells must be caught)", recall)
	}
	per := ScorePerSmell(an, corpus)
	for smell, r := range per {
		if r < 0.9 {
			t.Errorf("per-smell recall for %s = %.2f, want >= 0.9", smell, r)
		}
	}
}

func TestScoreDegenerateCases(t *testing.T) {
	an := NewAnalyzer()
	p, r := Score(an, nil)
	if p != 1 || r != 1 {
		t.Errorf("empty corpus should score (1,1), got (%v,%v)", p, r)
	}
}
