package nalabs

import (
	"strings"
	"unicode"
)

// Metric is one requirements-quality indicator. Higher values mean more of
// the measured phenomenon; whether high is bad depends on the metric (for
// Imperatives the smell is a count of zero).
type Metric interface {
	// Name returns the metric identifier used in reports and thresholds.
	Name() string
	// Measure computes the metric value for one requirement text.
	Measure(text string) float64
}

// countMetric counts dictionary occurrences, the workhorse of NALABS
// (ConjunctionMetric.cs, OptionalityMetric.cs, ... in the reference
// repository).
type countMetric struct {
	name string
	dict []string
}

func (m countMetric) Name() string { return m.name }

func (m countMetric) Measure(text string) float64 {
	return float64(CountOccurrences(text, m.dict))
}

// NewCountMetric builds a dictionary-count metric; it is exported so users
// can add project-specific dictionaries, the extension mechanism the NALABS
// GUI exposes through its settings.
func NewCountMetric(name string, dict []string) Metric {
	return countMetric{name: name, dict: dict}
}

// Standard metric constructors, one per reference metric class.

// Conjunctions counts compound-requirement indicators.
func Conjunctions() Metric { return NewCountMetric("conjunctions", ConjunctionWords) }

// Continuances counts nested-list indicators.
func Continuances() Metric { return NewCountMetric("continuances", ContinuanceWords) }

// Imperatives counts command words (zero is the smell).
func Imperatives() Metric { return NewCountMetric("imperatives", ImperativeWords) }

// Optionality counts optional-interpretation words.
func Optionality() Metric { return NewCountMetric("optionality", OptionalityWords) }

// Subjectivity counts opinion words.
func Subjectivity() Metric { return NewCountMetric("subjectivity", SubjectivityWords) }

// Weakness counts uncertainty words.
func Weakness() Metric { return NewCountMetric("weakness", WeaknessWords) }

// Vagueness counts vague qualifiers.
func Vagueness() Metric { return NewCountMetric("vagueness", VaguenessWords) }

// References counts external-reading indicators (ReferencesMetric.cs and
// References2.cs merge into one dictionary here).
func References() Metric { return NewCountMetric("references", ReferencePhrases) }

// ariMetric computes the Automated Readability Index.
type ariMetric struct{ deliverable bool }

func (ariMetric) Name() string { return "readability" }

// Measure returns the standard ARI: 4.71*(chars/words) + 0.5*(words/
// sentences) - 21.43. Higher means harder to read.
func (m ariMetric) Measure(text string) float64 {
	words := Words(text)
	if len(words) == 0 {
		return 0
	}
	sentences := SentenceCount(text)
	letters := 0
	for _, w := range words {
		letters += len(w)
	}
	ws := float64(len(words)) / float64(sentences)
	sw := float64(letters) / float64(len(words))
	if m.deliverable {
		// D2.7 states the formula "WS + 9 x SW"; kept for fidelity as the
		// alternative readability metric.
		return ws + 9*sw
	}
	return 4.71*sw + 0.5*ws - 21.43
}

// Readability returns the standard ARI metric.
func Readability() Metric { return ariMetric{} }

// ReadabilityD27 returns the deliverable's simplified ARI variant
// (WS + 9*SW).
func ReadabilityD27() Metric { return ariMetric{deliverable: true} }

// sizeMetric measures over-complexity as requirement length.
type sizeMetric struct{ unit string }

func (m sizeMetric) Name() string { return "size_" + m.unit }

func (m sizeMetric) Measure(text string) float64 {
	switch m.unit {
	case "chars":
		return float64(len(text))
	case "sentences":
		return float64(SentenceCount(text))
	default:
		return float64(len(Words(text)))
	}
}

// SizeWords measures requirement length in words.
func SizeWords() Metric { return sizeMetric{unit: "words"} }

// SizeChars measures requirement length in characters.
func SizeChars() Metric { return sizeMetric{unit: "chars"} }

// SizeSentences measures requirement length in sentences.
func SizeSentences() Metric { return sizeMetric{unit: "sentences"} }

// nvMetric approximates the noun-phrase density (NVMetric.cs): the ratio of
// candidate nouns (capitalised interior words + nominalisation suffixes) to
// total words. A crude proxy — NALABS itself is dictionary-based rather
// than a full POS tagger.
type nvMetric struct{}

func (nvMetric) Name() string { return "nv_ratio" }

func (nvMetric) Measure(text string) float64 {
	words := Words(text)
	if len(words) == 0 {
		return 0
	}
	nouns := 0
	for i, w := range words {
		lw := strings.ToLower(w)
		if i > 0 && len(w) > 1 && unicode.IsUpper(rune(w[0])) {
			nouns++
			continue
		}
		for _, suf := range []string{"tion", "ment", "ness", "ance", "ence", "ity"} {
			if strings.HasSuffix(lw, suf) {
				nouns++
				break
			}
		}
	}
	return float64(nouns) / float64(len(words))
}

// NVRatio returns the noun-density proxy metric.
func NVRatio() Metric { return nvMetric{} }

// AllMetrics returns the full NALABS metric suite in report order.
func AllMetrics() []Metric {
	return []Metric{
		Conjunctions(), Continuances(), Imperatives(), Optionality(),
		Subjectivity(), Weakness(), Vagueness(), References(),
		Readability(), SizeWords(), NVRatio(),
	}
}

// Words splits text into words, stripping punctuation.
func Words(text string) []string {
	return strings.FieldsFunc(text, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-' && r != '_'
	})
}

// SentenceCount counts sentences, at least 1 for non-empty text.
func SentenceCount(text string) int {
	n := 0
	for _, r := range text {
		if r == '.' || r == '!' || r == '?' || r == ';' {
			n++
		}
	}
	if n == 0 && len(strings.TrimSpace(text)) > 0 {
		return 1
	}
	if n == 0 {
		return 1
	}
	return n
}

// CountOccurrences counts case-insensitive, word-boundary-respecting
// occurrences of the dictionary entries (words or phrases) in text.
func CountOccurrences(text string, dict []string) int {
	lower := " " + strings.ToLower(text) + " "
	// Normalize separators so word boundaries are spaces.
	norm := strings.Map(func(r rune) rune {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == ' ' || r == '-' {
			return r
		}
		return ' '
	}, lower)
	total := 0
	for _, entry := range dict {
		e := strings.ToLower(strings.TrimSpace(entry))
		if e == "" {
			continue
		}
		if strings.HasSuffix(entry, " ") {
			// Prefix-style entries ("see ", "section ") match with a
			// trailing boundary already present.
			total += strings.Count(norm, " "+e+" ")
			continue
		}
		total += strings.Count(norm, " "+e+" ")
	}
	return total
}
