package nalabs

import (
	"bytes"
	"strings"
	"testing"
)

func TestIncompletenessMetric(t *testing.T) {
	m := Incompleteness()
	if got := m.Measure("Timeout value is TBD and retries are to be determined."); got != 2 {
		t.Errorf("incompleteness = %v, want 2", got)
	}
	if m.Measure("The system shall retry three times.") != 0 {
		t.Error("clean text should score 0")
	}
}

func TestDirectivesMetric(t *testing.T) {
	m := Directives()
	if got := m.Measure("See figure 3, for example the flow in table 2."); got != 3 {
		t.Errorf("directives = %v, want 3", got)
	}
}

func TestExtendedMetrics(t *testing.T) {
	ext := ExtendedMetrics()
	if len(ext) != len(AllMetrics())+2 {
		t.Errorf("ExtendedMetrics = %d entries", len(ext))
	}
}

func TestExtendedAnalyzer(t *testing.T) {
	an := NewExtendedAnalyzer()
	a := an.AnalyzeExtended(Requirement{ID: "R", Text: "The retry count shall be TBD."})
	if !a.Has(SmellIncomplete) {
		t.Errorf("TBD requirement should be flagged incomplete: %v", a.Smells)
	}
	clean := an.AnalyzeExtended(Requirement{ID: "R", Text: "The system shall retry three times."})
	if clean.Has(SmellIncomplete) {
		t.Errorf("clean requirement flagged incomplete: %v", clean.Smells)
	}
	// Base analyzer lacks the incompleteness metric, so AnalyzeExtended on
	// it degrades gracefully.
	base := NewAnalyzer()
	b := base.AnalyzeExtended(Requirement{ID: "R", Text: "Timeout is TBD."})
	if b.Has(SmellIncomplete) {
		t.Error("base analyzer has no incompleteness metric; no flag expected")
	}
}

func TestWriteResultsCSV(t *testing.T) {
	an := NewAnalyzer()
	rep := an.AnalyzeAll([]Requirement{
		{ID: "R1", Text: "The system shall encrypt stored passwords with SHA512."},
		{ID: "R2", Text: "The system may respond."},
	})
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, an, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id,") || !strings.HasSuffix(lines[0], ",smells") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "non_imperative") || !strings.Contains(lines[2], "optionality") {
		t.Errorf("R2 smells missing: %q", lines[2])
	}
}

func TestTopOffenders(t *testing.T) {
	an := NewAnalyzer()
	rep := an.AnalyzeAll([]Requirement{
		{ID: "clean", Text: "The system shall encrypt data."},
		{ID: "bad", Text: "The system may possibly respond in a timely manner using a suitable mechanism."},
		{ID: "worse", Text: "It can maybe be adequate, efficient, flexible, as appropriate, see table 1 and figure 2 and annex C."},
	})
	top := rep.TopOffenders(2)
	if len(top) != 2 || top[0].ID != "worse" || top[1].ID != "bad" {
		ids := []string{}
		for _, a := range top {
			ids = append(ids, a.ID)
		}
		t.Errorf("TopOffenders = %v", ids)
	}
	if got := rep.TopOffenders(99); len(got) != 3 {
		t.Errorf("over-requesting should clamp: %d", len(got))
	}
}

func TestSummary(t *testing.T) {
	an := NewAnalyzer()
	rep := an.AnalyzeAll([]Requirement{
		{ID: "R1", Text: "The system may respond."},
	})
	s := rep.Summary()
	for _, want := range []string{"requirements: 1, smelly: 1", "optionality", "mean ARI"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
