package resa

import (
	"strings"
	"testing"
)

func TestLevelOfFile(t *testing.T) {
	cases := map[string]Level{
		"spec.resa":       Generic,
		"brakes.vl":       VehicleLevel,
		"BRAKES.AL":       AnalysisLevel,
		"ecu.dl":          DesignLevel,
		"dir/sub/ecu.dl":  DesignLevel,
		"weird.name.resa": Generic,
	}
	for file, want := range cases {
		got, err := LevelOfFile(file)
		if err != nil || got != want {
			t.Errorf("LevelOfFile(%q) = %v, %v; want %v", file, got, err, want)
		}
	}
	if _, err := LevelOfFile("spec.txt"); err == nil {
		t.Error("unknown extension must error")
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{
		Generic: "generic", VehicleLevel: "vehicle",
		AnalysisLevel: "analysis", DesignLevel: "design",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("%d prints %q", int(l), l.String())
		}
	}
	if Level(9).String() == "" {
		t.Error("unknown level should still print")
	}
}

func TestParseDocument(t *testing.T) {
	content := `# braking requirements
When the pedal is pressed, the brake controller shall engage the actuator within 50 ms.
not a requirement
`
	doc, err := ParseDocument("braking.vl", content)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Level != VehicleLevel || doc.Name != "braking.vl" {
		t.Errorf("doc = %+v", doc)
	}
	if len(doc.Requirements) != 1 || len(doc.Errors) != 1 {
		t.Errorf("reqs=%d errs=%d", len(doc.Requirements), len(doc.Errors))
	}
	if !strings.Contains(doc.Requirements[0].Condition, "pedal") {
		t.Errorf("requirement = %+v", doc.Requirements[0])
	}
}

func TestParseDocumentBadExtension(t *testing.T) {
	if _, err := ParseDocument("spec.doc", "x"); err == nil {
		t.Error("bad extension must error")
	}
}

func TestRefines(t *testing.T) {
	cases := []struct {
		child, parent Level
		want          bool
	}{
		{AnalysisLevel, VehicleLevel, true},
		{DesignLevel, VehicleLevel, true},
		{DesignLevel, AnalysisLevel, true},
		{VehicleLevel, AnalysisLevel, false},
		{VehicleLevel, VehicleLevel, false},
		{Generic, VehicleLevel, false},
		{DesignLevel, Generic, false},
	}
	for _, c := range cases {
		if got := Refines(c.child, c.parent); got != c.want {
			t.Errorf("Refines(%v,%v) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}
