package resa

import "testing"

// FuzzParse checks that the boilerplate parser is total and that accepted
// requirements round-trip through their canonical rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"The gateway shall encrypt all traffic.",
		"The server shall not store plaintext passwords.",
		"When an intrusion is detected, the monitor shall raise an alarm within 5 seconds.",
		"While maintenance mode is active, the controller shall reject remote commands.",
		"If a checksum fails, then the loader shall abort the update.",
		"Where a TPM is present, the system shall seal the key.",
		"", "the", "When , the x shall y.", "The shall .",
		"The system shall respond within 0 ms.",
		"WHEN A, THE B SHALL C.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r, err := Parse(input)
		if err != nil {
			return
		}
		again, err := Parse(r.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", r.String(), input, err)
		}
		if again.Kind != r.Kind || again.Deadline != r.Deadline {
			t.Fatalf("round trip changed kind/deadline: %+v vs %+v", r, again)
		}
		// Every parsed requirement must map to a compilable pattern.
		p, err := r.ToPattern()
		if err != nil {
			t.Fatalf("parsed requirement %q has no pattern: %v", input, err)
		}
		if _, err := p.Compile(); err != nil {
			t.Fatalf("pattern of %q does not compile: %v", input, err)
		}
	})
}
