package resa

import (
	"strings"
	"testing"

	"veridevops/internal/tctl"
)

func TestParseUbiquitous(t *testing.T) {
	r, err := Parse("The gateway shall encrypt all traffic.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != Ubiquitous || r.System != "gateway" || r.Response != "encrypt all traffic" {
		t.Errorf("parsed %+v", r)
	}
	if r.Deadline != 0 {
		t.Error("no deadline expected")
	}
}

func TestParseProhibition(t *testing.T) {
	r, err := Parse("The server shall not store plaintext passwords.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != Prohibition || r.Response != "store plaintext passwords" {
		t.Errorf("parsed %+v", r)
	}
}

func TestParseEventDrivenWithDeadline(t *testing.T) {
	r, err := Parse("When an intrusion is detected, the monitor shall raise an alarm within 5 seconds.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != EventDriven {
		t.Fatalf("Kind = %v", r.Kind)
	}
	if r.Condition != "an intrusion is detected" {
		t.Errorf("Condition = %q", r.Condition)
	}
	if r.Deadline != 5000 {
		t.Errorf("Deadline = %d, want 5000 ms", r.Deadline)
	}
}

func TestParseDeadlineUnits(t *testing.T) {
	cases := []struct {
		text string
		want int64
	}{
		{"The system shall respond within 20 ms.", 20},
		{"The system shall respond within 3 seconds.", 3000},
		{"The system shall respond within 2 minutes.", 120000},
	}
	for _, c := range cases {
		r, err := Parse(c.text)
		if err != nil {
			t.Errorf("%q: %v", c.text, err)
			continue
		}
		if r.Deadline != c.want {
			t.Errorf("%q: Deadline = %d, want %d", c.text, r.Deadline, c.want)
		}
	}
}

func TestParseStateDriven(t *testing.T) {
	r, err := Parse("While maintenance mode is active, the controller shall reject remote commands.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != StateDriven || r.Condition != "maintenance mode is active" {
		t.Errorf("parsed %+v", r)
	}
}

func TestParseUnwanted(t *testing.T) {
	r, err := Parse("If the battery level drops below 10 percent, then the device shall enter safe mode.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != Unwanted || !strings.Contains(r.Condition, "battery level") {
		t.Errorf("parsed %+v", r)
	}
	if r.System != "device" {
		t.Errorf("System = %q", r.System)
	}
}

func TestParseUnwantedWithoutThen(t *testing.T) {
	r, err := Parse("If a checksum fails, the loader shall abort the update.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != Unwanted || r.Response != "abort the update" {
		t.Errorf("parsed %+v", r)
	}
}

func TestParseOptional(t *testing.T) {
	r, err := Parse("Where a TPM is present, the system shall seal the disk encryption key.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != Optional || r.Condition != "a TPM is present" {
		t.Errorf("parsed %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Encrypt everything.",                             // no boilerplate
		"The system should encrypt data.",                 // wrong modal
		"When intrusion the system shall react.",          // missing comma
		"While busy the system shall wait.",               // missing comma
		"If dropped the system shall recover.",            // missing comma
		"Where possible the system shall retry.",          // missing comma
		"When a fault occurs, the system shall not fail.", // shall-not outside ubiquitous
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	texts := []string{
		"When an intrusion is detected, the monitor shall raise an alarm within 5000 ms.",
		"While maintenance mode is active, the controller shall reject remote commands.",
		"The server shall not store plaintext passwords.",
		"If a checksum fails, then the loader shall abort the update.",
		"Where a TPM is present, the system shall seal the key.",
	}
	for _, text := range texts {
		r, err := Parse(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		r2, err := Parse(r.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", r.String(), err)
		}
		if r2.Kind != r.Kind || r2.Condition != r.Condition || r2.Response != r.Response || r2.Deadline != r.Deadline {
			t.Errorf("round trip changed %+v -> %+v", r, r2)
		}
	}
}

func TestParseAll(t *testing.T) {
	spec := `
# security requirements
The gateway shall encrypt all traffic.

When a fault occurs, the watchdog shall restart the service within 100 ms.
this line is garbage
`
	reqs, errs := ParseAll(spec)
	if len(reqs) != 2 {
		t.Errorf("parsed %d requirements, want 2", len(reqs))
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "line 6") {
		t.Errorf("errs = %v", errs)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"An intrusion is detected":  "an_intrusion_is_detected",
		"  raise the alarm!  ":      "raise_the_alarm",
		"battery < 10%":             "battery_10",
		"already_slugged":           "already_slugged",
		"Ends with punctuation...?": "ends_with_punctuation",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestToPatternMappings(t *testing.T) {
	cases := []struct {
		text      string
		behaviour tctl.Behaviour
		scope     tctl.Scope
	}{
		{"The gateway shall encrypt traffic.", tctl.Universality, tctl.Globally},
		{"The server shall not expose port 23.", tctl.Absence, tctl.Globally},
		{"When a fault occurs, the watchdog shall restart the service within 10 ms.", tctl.Response, tctl.Globally},
		{"While locked, the screen shall hide notifications.", tctl.Universality, tctl.AfterUntil},
		{"If a breach is detected, then the system shall isolate the host.", tctl.Response, tctl.Globally},
		{"Where a TPM is present, the system shall seal the key.", tctl.Response, tctl.Globally},
	}
	for _, c := range cases {
		r, err := Parse(c.text)
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		p, err := r.ToPattern()
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		if p.Behaviour != c.behaviour || p.Scope != c.scope {
			t.Errorf("%q -> %v/%v, want %v/%v", c.text, p.Behaviour, p.Scope, c.behaviour, c.scope)
		}
		if _, err := p.Compile(); err != nil {
			t.Errorf("%q: pattern does not compile: %v", c.text, err)
		}
	}
}

func TestFormalizeEndToEnd(t *testing.T) {
	f, err := Formalize("When an intrusion is detected, the monitor shall raise an alarm within 5 seconds.")
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	if !strings.Contains(s, "an_intrusion_is_detected") || !strings.Contains(s, "[<=5000]") {
		t.Errorf("Formalize = %q", s)
	}
	if _, err := tctl.Parse(s); err != nil {
		t.Errorf("formalized output must be parseable TCTL: %v", err)
	}
}

func TestFormalizeError(t *testing.T) {
	if _, err := Formalize("not a requirement"); err == nil {
		t.Error("garbage must not formalize")
	}
}
