// Package resa reimplements the ReSA-style boilerplate requirements
// language of VeriDevOps D2.7: requirements written in constrained natural
// language following EARS-like templates, parsed into a structured form,
// validated, and mapped onto the specification patterns of internal/tctl.
//
// Supported boilerplates (case-insensitive):
//
//	Ubiquitous:     "The <system> shall <response>."
//	Event-driven:   "When <trigger>, the <system> shall <response>."
//	State-driven:   "While <state>, the <system> shall <response>."
//	Unwanted:       "If <condition>, then the <system> shall <response>."
//	Optional:       "Where <feature>, the <system> shall <response>."
//	Prohibition:    "The <system> shall not <response>."
//
// Any boilerplate may carry a deadline suffix "within <N> <unit>".
package resa

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"veridevops/internal/tctl"
	"veridevops/internal/trace"
)

// Kind is the boilerplate template a requirement instantiates.
type Kind int

// Boilerplate kinds.
const (
	Ubiquitous Kind = iota
	EventDriven
	StateDriven
	Unwanted
	Optional
	Prohibition
)

func (k Kind) String() string {
	switch k {
	case Ubiquitous:
		return "ubiquitous"
	case EventDriven:
		return "event-driven"
	case StateDriven:
		return "state-driven"
	case Unwanted:
		return "unwanted-behaviour"
	case Optional:
		return "optional-feature"
	case Prohibition:
		return "prohibition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Requirement is a parsed boilerplate requirement.
type Requirement struct {
	Kind      Kind
	System    string
	Response  string
	Condition string // trigger / state / condition / feature, per kind
	// Deadline is the "within N units" bound in ticks; 0 when absent.
	Deadline trace.Time
	// Source is the original text.
	Source string
}

// String reconstructs the canonical boilerplate text.
func (r Requirement) String() string {
	var b strings.Builder
	switch r.Kind {
	case EventDriven:
		fmt.Fprintf(&b, "When %s, ", r.Condition)
	case StateDriven:
		fmt.Fprintf(&b, "While %s, ", r.Condition)
	case Unwanted:
		fmt.Fprintf(&b, "If %s, then ", r.Condition)
	case Optional:
		fmt.Fprintf(&b, "Where %s, ", r.Condition)
	}
	verb := "shall"
	if r.Kind == Prohibition {
		verb = "shall not"
	}
	fmt.Fprintf(&b, "the %s %s %s", r.System, verb, r.Response)
	if r.Deadline > 0 {
		fmt.Fprintf(&b, " within %d ms", r.Deadline)
	}
	b.WriteByte('.')
	return b.String()
}

var (
	deadlineRe = regexp.MustCompile(`(?i)\s+within\s+(\d+)\s*(ms|milliseconds?|s|seconds?|minutes?|min)\b`)
	shallRe    = regexp.MustCompile(`(?i)^the\s+(.+?)\s+shall\s+(not\s+)?(.+)$`)
)

// unitTicks converts a deadline unit to clock ticks (milliseconds).
func unitTicks(unit string) trace.Time {
	switch strings.ToLower(unit) {
	case "s", "second", "seconds":
		return 1000
	case "min", "minute", "minutes":
		return 60000
	default:
		return 1
	}
}

// Parse parses one boilerplate requirement.
func Parse(text string) (Requirement, error) {
	req := Requirement{Source: text}
	s := strings.TrimSpace(text)
	s = strings.TrimSuffix(s, ".")
	if s == "" {
		return req, fmt.Errorf("resa: empty requirement")
	}

	// Deadline suffix.
	if m := deadlineRe.FindStringSubmatch(s); m != nil {
		n, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			return req, fmt.Errorf("resa: bad deadline %q", m[1])
		}
		req.Deadline = n * unitTicks(m[2])
		s = deadlineRe.ReplaceAllString(s, "")
	}

	// Leading scope clause.
	lower := strings.ToLower(s)
	cut := func(prefix string) (string, string, bool) {
		if !strings.HasPrefix(lower, prefix) {
			return "", "", false
		}
		rest := s[len(prefix):]
		i := strings.Index(rest, ",")
		if i < 0 {
			return "", "", false
		}
		return strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+1:]), true
	}
	switch {
	case strings.HasPrefix(lower, "when "):
		cond, rest, ok := cut("when ")
		if !ok {
			return req, fmt.Errorf("resa: event-driven boilerplate needs a comma after the trigger")
		}
		req.Kind = EventDriven
		req.Condition = cond
		s = rest
	case strings.HasPrefix(lower, "while "):
		cond, rest, ok := cut("while ")
		if !ok {
			return req, fmt.Errorf("resa: state-driven boilerplate needs a comma after the state")
		}
		req.Kind = StateDriven
		req.Condition = cond
		s = rest
	case strings.HasPrefix(lower, "if "):
		cond, rest, ok := cut("if ")
		if !ok {
			return req, fmt.Errorf("resa: unwanted-behaviour boilerplate needs a comma after the condition")
		}
		req.Kind = Unwanted
		req.Condition = cond
		rest = strings.TrimSpace(rest)
		restLower := strings.ToLower(rest)
		if strings.HasPrefix(restLower, "then ") {
			rest = strings.TrimSpace(rest[5:])
		}
		s = rest
	case strings.HasPrefix(lower, "where "):
		cond, rest, ok := cut("where ")
		if !ok {
			return req, fmt.Errorf("resa: optional-feature boilerplate needs a comma after the feature")
		}
		req.Kind = Optional
		req.Condition = cond
		s = rest
	default:
		req.Kind = Ubiquitous
	}

	// Main clause.
	m := shallRe.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return req, fmt.Errorf("resa: main clause must match 'the <system> shall [not] <response>', got %q", s)
	}
	req.System = strings.TrimSpace(m[1])
	req.Response = strings.TrimSpace(m[3])
	if req.System == "" || req.Response == "" {
		return req, fmt.Errorf("resa: empty system or response in %q", s)
	}
	if req.Kind != Ubiquitous && strings.TrimSpace(req.Condition) == "" {
		return req, fmt.Errorf("resa: empty scope condition in %q", text)
	}
	if strings.TrimSpace(m[2]) != "" {
		if req.Kind != Ubiquitous {
			return req, fmt.Errorf("resa: 'shall not' is only supported in the ubiquitous boilerplate")
		}
		req.Kind = Prohibition
	}
	return req, nil
}

// ParseAll parses a multi-line specification, one requirement per line,
// skipping blank lines and '#' comments. It returns all requirements it
// could parse plus one error per rejected line.
func ParseAll(text string) ([]Requirement, []error) {
	var reqs []Requirement
	var errs []error
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := Parse(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", i+1, err))
			continue
		}
		reqs = append(reqs, r)
	}
	return reqs, errs
}

// Slug converts a free-text phrase to a proposition name usable in TCTL
// formulas and trace signals.
func Slug(phrase string) string {
	var b strings.Builder
	lastUnderscore := true
	for _, r := range strings.ToLower(strings.TrimSpace(phrase)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// ToPattern maps the boilerplate onto a specification pattern whose
// propositions are slugs of the requirement phrases.
func (r Requirement) ToPattern() (tctl.Pattern, error) {
	resp := tctl.Prop{Name: Slug(r.Response)}
	cond := tctl.Prop{Name: Slug(r.Condition)}
	var bound tctl.Bound
	if r.Deadline > 0 {
		bound = tctl.Within(r.Deadline)
	}
	switch r.Kind {
	case Ubiquitous:
		return tctl.Pattern{Behaviour: tctl.Universality, Scope: tctl.Globally, P: resp}, nil
	case Prohibition:
		return tctl.Pattern{Behaviour: tctl.Absence, Scope: tctl.Globally, P: resp}, nil
	case EventDriven, Unwanted:
		// Both reduce to response: trigger leads to reaction (the unwanted
		// boilerplate names a hazardous condition as the trigger).
		return tctl.Pattern{Behaviour: tctl.Response, Scope: tctl.Globally, P: cond, S: resp, B: bound}, nil
	case StateDriven:
		// The response behaviour must hold while the state does: after
		// state-entry until state-exit, universally.
		return tctl.Pattern{
			Behaviour: tctl.Universality, Scope: tctl.AfterUntil,
			P: resp, Q: cond, R: tctl.Not{F: cond},
		}, nil
	case Optional:
		// Feature-conditioned universality: where the feature exists, the
		// response must hold; encoded as global response to the feature
		// proposition.
		return tctl.Pattern{Behaviour: tctl.Response, Scope: tctl.Globally, P: cond, S: resp, B: bound}, nil
	default:
		return tctl.Pattern{}, fmt.Errorf("resa: unmapped kind %v", r.Kind)
	}
}

// Formalize is Parse followed by ToPattern followed by Compile: one call
// from boilerplate text to a TCTL formula.
func Formalize(text string) (tctl.Formula, error) {
	r, err := Parse(text)
	if err != nil {
		return nil, err
	}
	p, err := r.ToPattern()
	if err != nil {
		return nil, err
	}
	return p.Compile()
}
