package resa

import (
	"fmt"
	"path"
	"strings"
)

// EAST-ADL abstraction levels: the ReSA tool distinguishes specifications
// by file extension (.resa generic, .vl vehicle level, .al analysis level,
// .dl design level), tagging each requirement with the level it constrains.

// Level is the EAST-ADL abstraction level of a specification.
type Level int

// Levels, most abstract first.
const (
	Generic Level = iota
	VehicleLevel
	AnalysisLevel
	DesignLevel
)

func (l Level) String() string {
	switch l {
	case Generic:
		return "generic"
	case VehicleLevel:
		return "vehicle"
	case AnalysisLevel:
		return "analysis"
	case DesignLevel:
		return "design"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// LevelOfFile derives the abstraction level from a specification filename.
func LevelOfFile(filename string) (Level, error) {
	switch strings.ToLower(path.Ext(filename)) {
	case ".resa":
		return Generic, nil
	case ".vl":
		return VehicleLevel, nil
	case ".al":
		return AnalysisLevel, nil
	case ".dl":
		return DesignLevel, nil
	default:
		return Generic, fmt.Errorf("resa: unknown specification extension in %q (want .resa, .vl, .al or .dl)", filename)
	}
}

// Document is a parsed level-tagged specification.
type Document struct {
	Name         string
	Level        Level
	Requirements []Requirement
	Errors       []error
}

// ParseDocument parses a specification file's content, tagging it with the
// level implied by the filename.
func ParseDocument(filename, content string) (Document, error) {
	level, err := LevelOfFile(filename)
	if err != nil {
		return Document{}, err
	}
	reqs, errs := ParseAll(content)
	return Document{
		Name:         path.Base(filename),
		Level:        level,
		Requirements: reqs,
		Errors:       errs,
	}, nil
}

// Refines reports whether a document at level child may refine one at
// level parent (levels must strictly descend the abstraction hierarchy;
// generic documents refine nothing and are refined by nothing).
func Refines(child, parent Level) bool {
	if child == Generic || parent == Generic {
		return false
	}
	return child > parent
}
