package engine

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Fault is one injected misbehaviour class.
type Fault int

const (
	// FaultNone lets the call through untouched.
	FaultNone Fault = iota
	// FaultPanic makes the call panic (with ErrInjectedPanic).
	FaultPanic
	// FaultTransient makes the call report a transient, retryable failure
	// (an INCOMPLETE verdict at the requirement layer).
	FaultTransient
	// FaultSlow delays the call by the plan's SlowDelay before letting it
	// through.
	FaultSlow
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultTransient:
		return "transient"
	case FaultSlow:
		return "slow"
	default:
		return "fault(?)"
	}
}

// ErrInjectedPanic is the payload of every injected panic, so recovery
// paths and tests can tell injected faults from real bugs.
var ErrInjectedPanic = errors.New("engine: injected fault")

// FaultPlan parameterises an injector. Probabilities are evaluated in
// order panic, transient, slow against a single draw per call, so their
// sum should stay <= 1.
type FaultPlan struct {
	// FailFirst makes the first N calls transient failures regardless of
	// the probabilities — the deterministic "flaky host that recovers"
	// shape (fails N times, then behaves).
	FailFirst int
	// PanicProb, TransientProb, SlowProb are per-call fault probabilities.
	PanicProb, TransientProb, SlowProb float64
	// SlowDelay is how long a FaultSlow call stalls.
	SlowDelay time.Duration
}

// FaultInjector deterministically decides a fault for each call from a
// seeded RNG. It is safe for concurrent use; under concurrency the global
// draw order follows the interleaving, so deterministic tests should give
// each wrapped requirement its own injector.
type FaultInjector struct {
	mu    sync.Mutex
	plan  FaultPlan
	rng   *rand.Rand
	calls int
	count map[Fault]int
}

// NewFaultInjector returns an injector for the plan, seeded for
// reproducibility.
func NewFaultInjector(seed int64, plan FaultPlan) *FaultInjector {
	return &FaultInjector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(seed)),
		count: map[Fault]int{},
	}
}

// Plan returns the injector's plan.
func (fi *FaultInjector) Plan() FaultPlan { return fi.plan }

// Next decides the fault for the next call.
func (fi *FaultInjector) Next() Fault {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.calls++
	f := fi.decide()
	fi.count[f]++
	return f
}

func (fi *FaultInjector) decide() Fault {
	if fi.calls <= fi.plan.FailFirst {
		return FaultTransient
	}
	r := fi.rng.Float64()
	switch {
	case r < fi.plan.PanicProb:
		return FaultPanic
	case r < fi.plan.PanicProb+fi.plan.TransientProb:
		return FaultTransient
	case r < fi.plan.PanicProb+fi.plan.TransientProb+fi.plan.SlowProb:
		return FaultSlow
	default:
		return FaultNone
	}
}

// Calls reports how many faults have been decided.
func (fi *FaultInjector) Calls() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.calls
}

// Injected reports how many times the given fault was decided.
func (fi *FaultInjector) Injected(f Fault) int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.count[f]
}
