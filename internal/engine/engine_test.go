package engine

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep makes backoffs free so retry tests run instantly.
func noSleep(p Policy) Policy {
	p.Sleep = func(time.Duration) {}
	return p
}

func TestAttemptSingleCleanCall(t *testing.T) {
	calls := 0
	v, st := Attempt(func() int { calls++; return 42 }, nil, nil, Policy{})
	if v != 42 || calls != 1 {
		t.Fatalf("v=%d calls=%d", v, calls)
	}
	if st.Attempts != 1 || st.Retries != 0 || st.Panics != 0 || st.Err != nil {
		t.Errorf("stats = %+v", st)
	}
}

func TestAttemptRetriesTransientValue(t *testing.T) {
	calls := 0
	op := func() int {
		calls++
		if calls < 3 {
			return -1 // transient
		}
		return 7
	}
	v, st := Attempt(op, func(v int) bool { return v < 0 }, nil, noSleep(Policy{MaxAttempts: 5}))
	if v != 7 {
		t.Fatalf("v = %d, want 7", v)
	}
	if st.Attempts != 3 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 3 attempts / 2 retries", st)
	}
}

func TestAttemptExhaustedTransientReturnsVerdict(t *testing.T) {
	// A transient verdict on the last attempt is a legitimate outcome, not
	// an error: the caller gets the verdict, never the fallback.
	v, st := Attempt(func() int { return -1 },
		func(v int) bool { return v < 0 },
		func(error) int { return -999 },
		noSleep(Policy{MaxAttempts: 3}))
	if v != -1 {
		t.Fatalf("v = %d, want the transient verdict -1", v)
	}
	if st.Attempts != 3 || st.Err != nil {
		t.Errorf("stats = %+v", st)
	}
}

func TestAttemptPanicRecovery(t *testing.T) {
	v, st := Attempt(func() int { panic("boom") }, nil,
		func(err error) int {
			if _, ok := err.(*PanicError); !ok {
				t.Errorf("fallback err = %T %v, want *PanicError", err, err)
			}
			return -1
		},
		noSleep(Policy{MaxAttempts: 2}))
	if v != -1 {
		t.Fatalf("v = %d, want fallback -1", v)
	}
	if st.Attempts != 2 || st.Panics != 2 || st.Err == nil {
		t.Errorf("stats = %+v", st)
	}
}

func TestAttemptPanicThenSuccess(t *testing.T) {
	calls := 0
	op := func() int {
		calls++
		if calls == 1 {
			panic("flaky")
		}
		return 9
	}
	v, st := Attempt(op, nil, nil, noSleep(Policy{MaxAttempts: 3}))
	if v != 9 || st.Attempts != 2 || st.Panics != 1 || st.Err != nil {
		t.Errorf("v=%d stats=%+v", v, st)
	}
}

func TestAttemptNilFallbackZeroValue(t *testing.T) {
	v, st := Attempt(func() string { panic("x") }, nil, nil, Policy{})
	if v != "" || st.Panics != 1 {
		t.Errorf("v=%q stats=%+v", v, st)
	}
}

func TestAttemptTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	v, st := Attempt(func() int { <-block; return 1 }, nil,
		func(err error) int {
			if _, ok := err.(*TimeoutError); !ok {
				t.Errorf("err = %T, want *TimeoutError", err)
			}
			return -1
		},
		Policy{MaxAttempts: 1, AttemptTimeout: 5 * time.Millisecond})
	if v != -1 || st.Timeouts != 1 {
		t.Errorf("v=%d stats=%+v", v, st)
	}
}

func TestAttemptBudgetStopsRetries(t *testing.T) {
	calls := 0
	// Backoff of 50ms against a 1ms budget: the first retry would already
	// blow the budget, so exactly one attempt runs.
	_, st := Attempt(func() int { calls++; return -1 },
		func(v int) bool { return true },
		nil,
		Policy{MaxAttempts: 10, InitialBackoff: 50 * time.Millisecond, Budget: time.Millisecond})
	if calls != 1 || st.Attempts != 1 || st.Retries != 0 {
		t.Errorf("calls=%d stats=%+v", calls, st)
	}
}

func TestBackoffExponentialAndCapped(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts:    5,
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     40 * time.Millisecond,
		Sleep:          func(d time.Duration) { slept = append(slept, d) },
	}
	Attempt(func() int { return -1 }, func(int) bool { return true }, nil, p)
	want := []time.Duration{10, 20, 40, 40}
	if len(slept) != len(want) {
		t.Fatalf("slept = %v", slept)
	}
	for i := range want {
		if slept[i] != want[i]*time.Millisecond {
			t.Errorf("backoff %d = %v, want %v", i, slept[i], want[i]*time.Millisecond)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 4, 200} {
		out, st := Map(items, workers, func(i, v int) int { return v * v })
		if len(out) != 100 {
			t.Fatalf("len = %d", len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d out[%d] = %d", workers, i, v)
			}
		}
		if st.Workers < 1 || st.Workers > 100 {
			t.Errorf("workers = %d", st.Workers)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, st := Map(nil, 8, func(i int, v struct{}) int { return 1 })
	if out != nil || st.Workers != 0 {
		t.Errorf("out=%v stats=%+v", out, st)
	}
}

func TestMapPanicIsolation(t *testing.T) {
	items := []int{0, 1, 2, 3}
	out, st := Map(items, 2, func(i, v int) int {
		if v == 2 {
			panic("poison")
		}
		return v + 10
	})
	if st.Panics != 1 {
		t.Errorf("panics = %d", st.Panics)
	}
	if out[0] != 10 || out[1] != 11 || out[2] != 0 || out[3] != 13 {
		t.Errorf("out = %v", out)
	}
}

func TestMapWorkersExceedItems(t *testing.T) {
	out, st := Map([]int{1, 2, 3}, 64, func(i, v int) int { return v * 2 })
	if st.Workers != 3 {
		t.Errorf("workers = %d, want clamp to 3 items", st.Workers)
	}
	for i, v := range out {
		if v != (i+1)*2 {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestMapNonPositiveWorkers(t *testing.T) {
	for _, workers := range []int{0, -1, -100} {
		out, st := Map([]int{5, 6}, workers, func(i, v int) int { return v })
		if st.Workers != 1 {
			t.Errorf("workers=%d: Workers = %d, want 1", workers, st.Workers)
		}
		if len(out) != 2 || out[0] != 5 || out[1] != 6 {
			t.Errorf("workers=%d: out = %v", workers, out)
		}
	}
}

func TestMapAllItemsPanic(t *testing.T) {
	// A shard whose every item panics must still complete, with every
	// result at the zero value and every panic counted.
	items := make([]int, 16)
	out, st := Map(items, 4, func(i, v int) int { panic("total loss") })
	if st.Panics != 16 {
		t.Errorf("panics = %d, want 16", st.Panics)
	}
	for i, v := range out {
		if v != 0 {
			t.Errorf("out[%d] = %d, want zero value", i, v)
		}
	}
}

func TestMapBusyAndUtilization(t *testing.T) {
	var ran atomic.Int32
	_, st := Map(make([]int, 8), 4, func(i, v int) int {
		ran.Add(1)
		//lint:ignore clockuse pool busy-time is measured on the wall clock, so the worker must really block
		time.Sleep(time.Millisecond)
		return 0
	})
	if ran.Load() != 8 {
		t.Fatalf("ran = %d", ran.Load())
	}
	if st.Busy < 8*time.Millisecond {
		t.Errorf("busy = %v, want >= 8ms", st.Busy)
	}
	if u := st.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	plan := FaultPlan{PanicProb: 0.2, TransientProb: 0.3, SlowProb: 0.2}
	a, b := NewFaultInjector(42, plan), NewFaultInjector(42, plan)
	seen := map[Fault]bool{}
	for i := 0; i < 200; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("call %d: %v vs %v — same seed must give same sequence", i, fa, fb)
		}
		seen[fa] = true
	}
	for _, f := range []Fault{FaultNone, FaultPanic, FaultTransient, FaultSlow} {
		if !seen[f] {
			t.Errorf("200 draws never produced %v", f)
		}
	}
	if a.Calls() != 200 {
		t.Errorf("calls = %d", a.Calls())
	}
	total := 0
	for _, f := range []Fault{FaultNone, FaultPanic, FaultTransient, FaultSlow} {
		total += a.Injected(f)
	}
	if total != 200 {
		t.Errorf("injected counts sum to %d", total)
	}
}

func TestFaultInjectorFailFirst(t *testing.T) {
	fi := NewFaultInjector(1, FaultPlan{FailFirst: 3})
	for i := 0; i < 3; i++ {
		if f := fi.Next(); f != FaultTransient {
			t.Fatalf("call %d = %v, want transient", i, f)
		}
	}
	for i := 0; i < 10; i++ {
		if f := fi.Next(); f != FaultNone {
			t.Fatalf("post-FailFirst call = %v, want none", f)
		}
	}
}

func TestFaultNames(t *testing.T) {
	if FaultNone.String() != "none" || FaultPanic.String() != "panic" ||
		FaultTransient.String() != "transient" || FaultSlow.String() != "slow" {
		t.Error("fault names wrong")
	}
}

func TestAttemptCtxCancelsAbandonedAttempt(t *testing.T) {
	// A cooperative op blocks until its context is cancelled at the
	// attempt deadline, then signals that it released its goroutine.
	released := make(chan struct{})
	op := func(ctx context.Context) int {
		<-ctx.Done()
		close(released)
		return -1
	}
	v, st := AttemptCtx(op, nil, func(error) int { return 99 },
		noSleep(Policy{AttemptTimeout: 5 * time.Millisecond}))
	if v != 99 {
		t.Fatalf("v = %d, want fallback 99", v)
	}
	if st.Timeouts != 1 {
		t.Errorf("stats = %+v, want 1 timeout", st)
	}
	select {
	case <-released:
	//lint:ignore clockuse deadlock watchdog on a real goroutine; virtual time cannot advance it
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned attempt never observed its cancelled context")
	}
}

func TestAttemptCtxNoTimeoutContextNeverCancelled(t *testing.T) {
	v, st := AttemptCtx(func(ctx context.Context) int {
		if ctx.Err() != nil {
			t.Error("context cancelled without an AttemptTimeout")
		}
		return 5
	}, nil, nil, Policy{})
	if v != 5 || st.Attempts != 1 {
		t.Fatalf("v=%d stats=%+v", v, st)
	}
}

func TestPullDrainsSharedQueue(t *testing.T) {
	var next atomic.Int64
	const n = 100
	var done atomic.Int64
	walls, ps := Pull(4, func(int) (func(), bool) {
		i := next.Add(1) - 1
		if i >= n {
			return nil, false
		}
		return func() { done.Add(1) }, true
	})
	if done.Load() != n {
		t.Fatalf("ran %d tasks, want %d", done.Load(), n)
	}
	if len(walls) != 4 || ps.Workers != 4 {
		t.Errorf("walls=%d workers=%d, want 4", len(walls), ps.Workers)
	}
	for w, d := range walls {
		if d <= 0 {
			t.Errorf("worker %d wall = %v, want > 0", w, d)
		}
	}
}

func TestPullPanicDoesNotKillWorker(t *testing.T) {
	var next atomic.Int64
	var clean atomic.Int64
	_, ps := Pull(2, func(int) (func(), bool) {
		i := next.Add(1) - 1
		if i >= 10 {
			return nil, false
		}
		if i%2 == 0 {
			return func() { panic("boom") }, true
		}
		return func() { clean.Add(1) }, true
	})
	if ps.Panics != 5 {
		t.Errorf("panics = %d, want 5", ps.Panics)
	}
	if clean.Load() != 5 {
		t.Errorf("clean tasks = %d, want 5: a panic must not retire the worker", clean.Load())
	}
}

func TestPullSingleWorkerInline(t *testing.T) {
	order := []int{}
	i := 0
	Pull(1, func(w int) (func(), bool) {
		if w != 0 {
			t.Fatalf("worker = %d, want 0", w)
		}
		if i >= 3 {
			return nil, false
		}
		j := i
		i++
		return func() { order = append(order, j) }, true
	})
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}
