// Package engine is the fault-tolerant execution substrate shared by the
// RQCODE catalogue runners (internal/core), the reactive-protection
// scheduler (internal/monitor) and the CLIs. It provides three building
// blocks:
//
//   - Attempt: run one operation with panic recovery, per-attempt timeouts,
//     and retry with exponential backoff under a configurable attempt/time
//     budget — a misbehaving check yields a verdict, never a crash.
//   - Map: a bounded worker pool that preserves input order and reports
//     wall/busy time and worker utilisation.
//   - FaultInjector: a seeded, deterministic source of injected panics,
//     transient failures and slowdowns for robustness testing (the E7b
//     experiment).
//
// The package is deliberately generic — it knows nothing about
// requirements or check statuses — so internal/core can build its
// execution path on top of it without an import cycle.
package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"veridevops/internal/telemetry"
)

// Policy configures how Attempt runs one operation. The zero value means
// "one attempt, no timeout, no budget": exactly the semantics of calling
// the operation directly, plus panic recovery.
type Policy struct {
	// MaxAttempts is the total number of tries per operation (first try
	// included). Values below 1 are treated as 1.
	MaxAttempts int
	// InitialBackoff is the delay before the first retry (default 1ms when
	// retries are enabled).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 100ms).
	MaxBackoff time.Duration
	// BackoffFactor multiplies the delay after each retry (default 2).
	BackoffFactor float64
	// AttemptTimeout bounds one attempt's wall-clock time; 0 disables it.
	// A timed-out attempt counts as a retryable failure. The abandoned
	// attempt's goroutine is left to finish in the background (its result
	// is discarded), mirroring how real audit agents abandon stuck probes.
	// Operations run through AttemptCtx receive a context that is
	// cancelled at the deadline, so cooperative probes can notice the
	// abandonment and release their goroutine early instead of running to
	// completion.
	AttemptTimeout time.Duration
	// Budget bounds the total wall-clock time across attempts and
	// backoffs; 0 disables it. Retries stop once the budget would be
	// exceeded.
	Budget time.Duration
	// Sleep is the backoff sleeper, injectable for tests and for
	// virtual-time schedulers; nil means time.Sleep.
	Sleep func(time.Duration)
	// Span, when non-nil, parents one "attempt" child span per try,
	// tagged with its 1-based index and outcome: ok (final value),
	// transient (retryable value), panic, or timeout. The catalogue
	// runner wires each check's span here; a nil Span — telemetry
	// disabled — adds zero allocations to the attempt loop.
	Span *telemetry.Span
}

// Retry is a convenience Policy with n total attempts and fast default
// backoff.
func Retry(n int) Policy { return Policy{MaxAttempts: n} }

func (p Policy) normalized() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = 2
	}
	if p.Sleep == nil {
		//lint:ignore clockuse seam default: this is the one place the real sleep is wired; tests inject a virtual Sleep
		p.Sleep = time.Sleep
	}
	return p
}

// Stats is the telemetry of one Attempt call.
type Stats struct {
	// Attempts is how many times the operation ran (>= 1).
	Attempts int
	// Retries is Attempts beyond the first that were actually taken.
	Retries int
	// Panics counts attempts that ended in a recovered panic.
	Panics int
	// Timeouts counts attempts abandoned at AttemptTimeout.
	Timeouts int
	// Duration is total wall time spent, backoffs included.
	Duration time.Duration
	// Err is the failure of the last attempt when no attempt produced a
	// value (recovered panic or timeout); nil otherwise.
	Err error
}

// PanicError wraps a recovered panic value.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("engine: recovered panic: %v", e.Value) }

// TimeoutError reports an attempt abandoned at its deadline.
type TimeoutError struct{ Timeout time.Duration }

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("engine: attempt abandoned after %v", e.Timeout)
}

// Attempt runs op under the policy. A panicking or timed-out attempt is
// retried while attempts and budget remain; a returned value is retried
// only while retryable reports it transient (nil retryable means any value
// is final). When every attempt fails without producing a value, fallback
// maps the last error to the result (nil fallback returns the zero value).
// The final value of a retry-exhausted transient verdict is that verdict
// itself — it is a legitimate outcome, not an error.
func Attempt[R any](op func() R, retryable func(R) bool, fallback func(error) R, p Policy) (R, Stats) {
	return AttemptCtx(func(context.Context) R { return op() }, retryable, fallback, p)
}

// AttemptCtx is Attempt for context-aware operations: each attempt
// receives a context that is cancelled when the attempt is abandoned at
// AttemptTimeout (and when the attempt completes). Cooperative operations
// — host probes checking the context at probe boundaries — can use it to
// unwind early and release their goroutine instead of running to
// completion in the background. Without an AttemptTimeout the context is
// never cancelled mid-attempt.
func AttemptCtx[R any](op func(context.Context) R, retryable func(R) bool, fallback func(error) R, p Policy) (R, Stats) {
	p = p.normalized()
	start := time.Now()
	var st Stats
	var last R
	hasValue := false
	backoff := p.InitialBackoff
	for {
		st.Attempts++
		sp := p.Span.Child("attempt").TagInt("n", st.Attempts)
		v, err := runProtected(op, p.AttemptTimeout)
		if err == nil {
			last, hasValue = v, true
			st.Err = nil
			if retryable == nil || !retryable(v) {
				sp.Tag("outcome", "ok").End()
				break
			}
			sp.Tag("outcome", "transient").End()
		} else {
			hasValue = false
			st.Err = err
			switch err.(type) {
			case *PanicError:
				st.Panics++
				sp.Tag("outcome", "panic").End()
			case *TimeoutError:
				st.Timeouts++
				sp.Tag("outcome", "timeout").End()
			default:
				sp.Tag("outcome", "error").End()
			}
		}
		if st.Attempts >= p.MaxAttempts {
			break
		}
		if p.Budget > 0 && time.Since(start)+backoff > p.Budget {
			break
		}
		st.Retries++
		p.Sleep(backoff)
		backoff = time.Duration(float64(backoff) * p.BackoffFactor)
		if backoff > p.MaxBackoff {
			backoff = p.MaxBackoff
		}
	}
	st.Duration = time.Since(start)
	if hasValue {
		return last, st
	}
	var zero R
	if fallback != nil {
		return fallback(st.Err), st
	}
	return zero, st
}

// runProtected executes op once with panic recovery and an optional
// wall-clock deadline. With a deadline, op's context is cancelled both at
// the deadline (so an abandoned probe can unwind cooperatively) and after
// a completed attempt (releasing the timer).
func runProtected[R any](op func(context.Context) R, timeout time.Duration) (R, error) {
	if timeout <= 0 {
		return runRecovered(func() R { return op(context.Background()) })
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	type outcome struct {
		v   R
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := runRecovered(func() R { return op(ctx) })
		ch <- outcome{v, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-ctx.Done():
		var zero R
		return zero, &TimeoutError{Timeout: timeout}
	}
}

func runRecovered[R any](op func() R) (v R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return op(), nil
}
