package engine

import (
	"bytes"
	"context"
	"testing"
	"time"

	"veridevops/internal/telemetry"
)

// TestAttemptSpansCarryOutcomes drives one Attempt through a panic, a
// transient verdict and a final success, and checks the emitted
// per-attempt spans carry the matching outcome tags in order.
func TestAttemptSpansCarryOutcomes(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.New(&buf)
	root := tr.Root("check")

	calls := 0
	op := func() string {
		calls++
		switch calls {
		case 1:
			panic("injected")
		case 2:
			return "transient"
		default:
			return "ok"
		}
	}
	v, st := Attempt(op,
		func(s string) bool { return s == "transient" },
		nil,
		Policy{MaxAttempts: 3, InitialBackoff: time.Microsecond, Span: root})
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if v != "ok" || st.Attempts != 3 || st.Panics != 1 {
		t.Fatalf("attempt result = %q stats %+v", v, st)
	}

	recs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	var outcomes []string
	for _, n := range roots[0].Children {
		if n.Name != "attempt" {
			t.Fatalf("child %q, want attempt", n.Name)
		}
		outcomes = append(outcomes, n.Tags["outcome"])
	}
	want := []string{"panic", "transient", "ok"}
	if len(outcomes) != len(want) {
		t.Fatalf("attempt spans = %v, want %v", outcomes, want)
	}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Errorf("attempt %d outcome = %q, want %q", i+1, outcomes[i], want[i])
		}
	}
}

// TestAttemptSpanTimeout checks an abandoned attempt's span is tagged
// timeout.
func TestAttemptSpanTimeout(t *testing.T) {
	tr := telemetry.New(nil)
	root := tr.Root("check")
	_, st := AttemptCtx(func(ctx context.Context) int {
		// Block until the attempt timeout cancels the context, then unwind:
		// the attempt is abandoned without any wall-clock sleep.
		<-ctx.Done()
		return 1
	}, nil, nil, Policy{MaxAttempts: 1, AttemptTimeout: time.Millisecond, Span: root})
	root.End()
	if st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
	rows := tr.Breakdown()
	found := false
	for _, r := range rows {
		if r.Name == "attempt" && r.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no attempt row in breakdown: %+v", rows)
	}
}
