package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// PoolStats is the telemetry of one Map call.
type PoolStats struct {
	// Workers is the number of workers actually used.
	Workers int
	// Wall is the elapsed time of the whole call.
	Wall time.Duration
	// Busy is the summed time workers spent inside the item function; with
	// perfectly parallel work Busy approaches Workers * Wall.
	Busy time.Duration
	// Panics counts items whose function panicked past its own recovery
	// (those items get the zero result; the pool never crashes).
	Panics int
}

// Utilization is Busy / (Workers * Wall) in [0,1]: how much of the pool's
// capacity the run kept busy.
func (s PoolStats) Utilization() float64 {
	if s.Workers <= 0 || s.Wall <= 0 {
		return 0
	}
	u := float64(s.Busy) / (float64(s.Workers) * float64(s.Wall))
	if u > 1 {
		u = 1
	}
	return u
}

// Map applies f to every item on a bounded worker pool and returns the
// results in input order. Workers are clamped to [1, len(items)]; a single
// worker runs inline with no goroutines, so sequential callers pay no
// scheduling cost. A panic escaping f leaves that item's result at the
// zero value and is counted in PoolStats.Panics — one misbehaving item
// never takes down the pool (callers wanting a richer verdict should
// recover inside f, e.g. via Attempt).
func Map[T, R any](items []T, workers int, f func(int, T) R) ([]R, PoolStats) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	if len(items) == 0 {
		return nil, PoolStats{Workers: 0}
	}
	results := make([]R, len(items))
	var busy, panics atomic.Int64
	start := time.Now()
	runOne := func(i int) {
		t0 := time.Now()
		defer func() {
			busy.Add(int64(time.Since(t0)))
			if r := recover(); r != nil {
				panics.Add(1)
			}
		}()
		results[i] = f(i, items[i])
	}
	if workers == 1 {
		for i := range items {
			runOne(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runOne(i)
				}
			}()
		}
		for i := range items {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	return results, PoolStats{
		Workers: workers,
		Wall:    time.Since(start),
		Busy:    time.Duration(busy.Load()),
		Panics:  int(panics.Load()),
	}
}

// Pull is the pull-based counterpart of Map for callers whose work list
// is dynamic: a pool of workers repeatedly asks next for a task until it
// reports no more work. next is called with the worker index and must be
// safe for concurrent use — it is the scheduler (a shared queue, a
// work-stealing heap); returning ok=false retires the asking worker. A
// panic escaping a task is counted in PoolStats.Panics and does not kill
// its worker. Returns each worker's wall time (pool start to that
// worker's retirement) alongside the pool telemetry. A single worker
// runs inline with no goroutines.
func Pull(workers int, next func(worker int) (task func(), ok bool)) ([]time.Duration, PoolStats) {
	if workers < 1 {
		workers = 1
	}
	walls := make([]time.Duration, workers)
	var busy, panics atomic.Int64
	start := time.Now()
	runTask := func(task func()) {
		t0 := time.Now()
		defer func() {
			busy.Add(int64(time.Since(t0)))
			if r := recover(); r != nil {
				panics.Add(1)
			}
		}()
		task()
	}
	worker := func(w int) {
		for {
			task, ok := next(w)
			if !ok {
				break
			}
			runTask(task)
		}
		walls[w] = time.Since(start)
	}
	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		wg.Wait()
	}
	return walls, PoolStats{
		Workers: workers,
		Wall:    time.Since(start),
		Busy:    time.Duration(busy.Load()),
		Panics:  int(panics.Load()),
	}
}
