package iec62443

import (
	"math/rand"
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

func TestFRNames(t *testing.T) {
	if IAC.String() != "FR1-IAC" || RA.String() != "FR7-RA" {
		t.Error("FR short names wrong")
	}
	if !strings.Contains(TRE.Name(), "Timely response") {
		t.Error("FR long names wrong")
	}
	if FR(99).String() == "" || FR(99).Name() == "" {
		t.Error("unknown FR should still print")
	}
	if len(AllFRs) != 7 {
		t.Error("seven foundational requirements expected")
	}
}

func TestTagMapValidate(t *testing.T) {
	if err := BuiltinTags().Validate(); err != nil {
		t.Fatalf("builtin tags invalid: %v", err)
	}
	bad := []TagMap{
		{"X": {}},
		{"X": {{FR: FR(0), SL: 1}}},
		{"X": {{FR: IAC, SL: 0}}},
		{"X": {{FR: IAC, SL: 9}}},
	}
	for i, tm := range bad {
		if tm.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestBuiltinTagsCoverAllFindings(t *testing.T) {
	tags := BuiltinTags()
	lin := stig.UbuntuCatalog(host.NewLinux())
	win := stig.Win10Catalog(host.NewWindows10())
	for _, id := range append(lin.IDs(), win.IDs()...) {
		if _, ok := tags[id]; !ok {
			t.Errorf("finding %s has no IEC 62443 tag", id)
		}
	}
}

// reportFor builds a compliance report with the given finding statuses.
func reportFor(statuses map[string]core.CheckStatus) core.Report {
	var rep core.Report
	for id, st := range statuses {
		rep.Results = append(rep.Results, core.Result{FindingID: id, Before: st, After: st})
	}
	return rep
}

func TestAssessAllPassing(t *testing.T) {
	statuses := map[string]core.CheckStatus{}
	for id := range BuiltinTags() {
		statuses[id] = core.CheckPass
	}
	a, err := Assess(reportFor(statuses), BuiltinTags(), TypicalTarget())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Met() {
		t.Errorf("all findings pass; profile must be met:\n%s", a)
	}
	// IAC evidence reaches SL3 (V-219318).
	for _, c := range a.Classes {
		if c.FR == IAC && c.Achieved != 3 {
			t.Errorf("IAC achieved = %d, want 3", c.Achieved)
		}
		if c.FR == RA && !c.Untagged {
			t.Error("RA has no tagged findings; must be marked untagged")
		}
	}
}

func TestAssessBlockingFinding(t *testing.T) {
	statuses := map[string]core.CheckStatus{}
	for id := range BuiltinTags() {
		statuses[id] = core.CheckPass
	}
	statuses["V-219318"] = core.CheckFail // multifactor (IAC SL3) fails

	a, err := Assess(reportFor(statuses), BuiltinTags(), TypicalTarget())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Classes {
		if c.FR != IAC {
			continue
		}
		if c.Achieved != 2 {
			t.Errorf("IAC achieved = %d, want 2 (SL3 finding fails)", c.Achieved)
		}
		if len(c.Blocking) != 1 || c.Blocking[0] != "V-219318" {
			t.Errorf("Blocking = %v", c.Blocking)
		}
		if !c.Met() { // target IAC is 2
			t.Error("IAC target 2 is still met")
		}
	}
}

func TestAssessLowLevelFailureCapsClass(t *testing.T) {
	statuses := map[string]core.CheckStatus{}
	for id := range BuiltinTags() {
		statuses[id] = core.CheckPass
	}
	statuses["V-63447"] = core.CheckFail // TRE SL1

	a, err := Assess(reportFor(statuses), BuiltinTags(), TypicalTarget())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Classes {
		if c.FR == TRE {
			if c.Achieved != 0 {
				t.Errorf("TRE achieved = %d, want 0 (SL1 fails)", c.Achieved)
			}
			if c.Met() {
				t.Error("TRE target 2 cannot be met")
			}
		}
	}
	if a.Met() {
		t.Error("profile must not be met")
	}
}

func TestAssessIgnoresUnassessedFindings(t *testing.T) {
	// Only one finding assessed: other tags contribute nothing.
	a, err := Assess(reportFor(map[string]core.CheckStatus{
		"V-219304": core.CheckPass, // UC SL1
	}), BuiltinTags(), Profile{UC: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Classes {
		switch c.FR {
		case UC:
			if c.Achieved != 1 || !c.Met() {
				t.Errorf("UC = %+v", c)
			}
		case IAC:
			if !c.Untagged {
				t.Error("IAC has no assessed findings; must be untagged")
			}
		}
	}
}

func TestAssessBadTarget(t *testing.T) {
	if _, err := Assess(core.Report{}, BuiltinTags(), Profile{IAC: 9}); err == nil {
		t.Error("out-of-range target must error")
	}
	if _, err := Assess(core.Report{}, TagMap{"X": {}}, Profile{}); err == nil {
		t.Error("invalid tag map must error")
	}
}

func TestAssessmentString(t *testing.T) {
	statuses := map[string]core.CheckStatus{}
	for id := range BuiltinTags() {
		statuses[id] = core.CheckPass
	}
	statuses["V-219177"] = core.CheckFail
	a, err := Assess(reportFor(statuses), BuiltinTags(), TypicalTarget())
	if err != nil {
		t.Fatal(err)
	}
	s := a.String()
	for _, want := range []string{"FR1-IAC", "FR4-DC", "V-219177", "profile met: false"} {
		if !strings.Contains(s, want) {
			t.Errorf("assessment missing %q:\n%s", want, s)
		}
	}
}

// End-to-end: drifted hosts fail the profile; enforcement restores it.
func TestAssessEndToEndWithCatalogues(t *testing.T) {
	h := host.NewUbuntu1804()
	w := host.NewWindows10()
	lin := stig.UbuntuCatalog(h)
	win := stig.Win10Catalog(w)
	lin.Run(core.CheckAndEnforce)
	win.Run(core.CheckAndEnforce)

	rng := rand.New(rand.NewSource(8))
	host.DriftLinux(h, 10, rng)
	host.DriftWindows(w, 6, rng)

	combined := func() core.Report {
		a := lin.Run(core.CheckOnly)
		b := win.Run(core.CheckOnly)
		return core.Report{Results: append(a.Results, b.Results...)}
	}
	before, err := Assess(combined(), BuiltinTags(), TypicalTarget())
	if err != nil {
		t.Fatal(err)
	}
	if before.Met() {
		t.Skip("drift missed every tagged finding; pick another seed")
	}

	lin.Run(core.CheckAndEnforce)
	win.Run(core.CheckAndEnforce)
	after, err := Assess(combined(), BuiltinTags(), TypicalTarget())
	if err != nil {
		t.Fatal(err)
	}
	if !after.Met() {
		t.Errorf("enforcement must restore the profile:\n%s", after)
	}
}
