// Package iec62443 models the IEC 62443-3-3 assessment scheme that
// VeriDevOps cites as a driving standard: system requirements are grouped
// under seven foundational requirement (FR) classes, each demanded at a
// target security level (SL-T 1..4). The package maps RQCODE findings to
// FR/SL tags, evaluates a compliance report against a target profile, and
// reports the achieved security level per class with the gap list —
// turning the catalogue runner's PASS/FAIL rows into a standards-facing
// verdict.
package iec62443

import (
	"fmt"
	"sort"
	"strings"

	"veridevops/internal/core"
)

// FR identifies one of the seven foundational requirement classes of
// IEC 62443.
type FR int

// The foundational requirement classes.
const (
	IAC FR = iota + 1 // FR1: identification and authentication control
	UC                // FR2: use control
	SI                // FR3: system integrity
	DC                // FR4: data confidentiality
	RDF               // FR5: restricted data flow
	TRE               // FR6: timely response to events
	RA                // FR7: resource availability
)

// AllFRs lists the classes in standard order.
var AllFRs = []FR{IAC, UC, SI, DC, RDF, TRE, RA}

func (f FR) String() string {
	switch f {
	case IAC:
		return "FR1-IAC"
	case UC:
		return "FR2-UC"
	case SI:
		return "FR3-SI"
	case DC:
		return "FR4-DC"
	case RDF:
		return "FR5-RDF"
	case TRE:
		return "FR6-TRE"
	case RA:
		return "FR7-RA"
	default:
		return fmt.Sprintf("FR(%d)", int(f))
	}
}

// Name returns the long name of the class.
func (f FR) Name() string {
	switch f {
	case IAC:
		return "Identification and authentication control"
	case UC:
		return "Use control"
	case SI:
		return "System integrity"
	case DC:
		return "Data confidentiality"
	case RDF:
		return "Restricted data flow"
	case TRE:
		return "Timely response to events"
	case RA:
		return "Resource availability"
	default:
		return "Unknown"
	}
}

// SL is a security level, 0 (none) through 4.
type SL int

// Valid reports whether the level is in range.
func (s SL) Valid() bool { return s >= 0 && s <= 4 }

// Tag assigns a finding to a foundational requirement at a level: the
// finding must pass for the level (and everything above it) to be
// achieved.
type Tag struct {
	FR FR
	SL SL
}

// TagMap maps finding IDs to their FR/SL tags (a finding may support
// several classes).
type TagMap map[string][]Tag

// Validate checks every tag is well-formed.
func (tm TagMap) Validate() error {
	for id, tags := range tm {
		if len(tags) == 0 {
			return fmt.Errorf("iec62443: finding %s has no tags", id)
		}
		for _, t := range tags {
			if t.FR < IAC || t.FR > RA {
				return fmt.Errorf("iec62443: finding %s: bad FR %d", id, int(t.FR))
			}
			if !t.SL.Valid() || t.SL == 0 {
				return fmt.Errorf("iec62443: finding %s: bad SL %d", id, int(t.SL))
			}
		}
	}
	return nil
}

// BuiltinTags maps the findings implemented in internal/stig to FR/SL
// tags, following the 62443-3-3 system-requirement families each finding
// supports (authentication findings under FR1, audit-event findings under
// FR6, integrity tooling under FR3, confidentiality hardening under FR4).
func BuiltinTags() TagMap {
	return TagMap{
		// Ubuntu 18.04.
		"V-219157": {{SI, 1}},           // NIS removal: system integrity hygiene
		"V-219158": {{DC, 1}, {IAC, 1}}, // rsh-server: cleartext credentials
		"V-219161": {{RDF, 1}, {UC, 1}}, // controlled remote access
		"V-219177": {{DC, 2}},           // password hashing strength
		"V-219304": {{UC, 1}},           // session lock
		"V-219318": {{IAC, 3}},          // multifactor authentication
		"V-219319": {{IAC, 2}},          // PIV credentials
		"V-219343": {{SI, 2}},           // security function verification (AIDE)
		// Windows 10 audit policies: timely response to events.
		"V-63447": {{TRE, 1}, {UC, 2}},
		"V-63449": {{TRE, 1}},
		"V-63463": {{TRE, 1}, {IAC, 1}},
		"V-63467": {{TRE, 1}},
		"V-63483": {{TRE, 2}},
		"V-63487": {{TRE, 2}},
	}
}

// Profile is a target security level per foundational requirement (SL-T).
// Classes absent from the map have target 0 (no requirement).
type Profile map[FR]SL

// TypicalTarget returns a representative SL-T profile for an industrial
// control zone requiring strong authentication and auditing.
func TypicalTarget() Profile {
	return Profile{IAC: 2, UC: 1, SI: 2, DC: 2, RDF: 1, TRE: 2}
}

// ClassResult is the assessment outcome for one FR class.
type ClassResult struct {
	FR FR
	// Target is the demanded level, Achieved the level supported by the
	// passing findings.
	Target, Achieved SL
	// Blocking lists the failing finding IDs that cap the achieved level,
	// sorted.
	Blocking []string
	// Untagged is true when no finding in the report supports this class
	// at any level (the achieved level is then 0 by absence of evidence).
	Untagged bool
}

// Met reports whether the class meets its target.
func (c ClassResult) Met() bool { return c.Achieved >= c.Target }

// Assessment is the whole-profile outcome.
type Assessment struct {
	Classes []ClassResult
}

// Met reports whether every class meets its target.
func (a Assessment) Met() bool {
	for _, c := range a.Classes {
		if !c.Met() {
			return false
		}
	}
	return true
}

// String renders the assessment table.
func (a Assessment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-44s %-7s %-9s %-5s %s\n", "CLASS", "NAME", "TARGET", "ACHIEVED", "MET", "BLOCKING")
	for _, c := range a.Classes {
		fmt.Fprintf(&b, "%-10s %-44s SL-%d    SL-%d      %-5v %s\n",
			c.FR, c.FR.Name(), c.Target, c.Achieved, c.Met(), strings.Join(c.Blocking, ","))
	}
	fmt.Fprintf(&b, "profile met: %v\n", a.Met())
	return b.String()
}

// Assess evaluates a compliance report against the target profile using
// the tag map. The achieved level of a class is the highest L such that
// every tagged finding with SL <= L passes; findings absent from the
// report are ignored (they were not assessed).
func Assess(rep core.Report, tags TagMap, target Profile) (Assessment, error) {
	if err := tags.Validate(); err != nil {
		return Assessment{}, err
	}
	// status per assessed finding.
	status := map[string]core.CheckStatus{}
	for _, res := range rep.Results {
		status[res.FindingID] = res.After
	}

	// Per class: the failing findings per level and whether any evidence
	// exists.
	type classAcc struct {
		failAt   [5][]string
		anyTag   bool
		maxLevel SL
	}
	acc := map[FR]*classAcc{}
	for _, fr := range AllFRs {
		acc[fr] = &classAcc{}
	}
	for id, ts := range tags {
		st, assessed := status[id]
		if !assessed {
			continue
		}
		for _, t := range ts {
			a := acc[t.FR]
			a.anyTag = true
			if t.SL > a.maxLevel {
				a.maxLevel = t.SL
			}
			if st != core.CheckPass {
				a.failAt[t.SL] = append(a.failAt[t.SL], id)
			}
		}
	}

	var out Assessment
	for _, fr := range AllFRs {
		tgt := target[fr]
		if !tgt.Valid() {
			return Assessment{}, fmt.Errorf("iec62443: target SL %d out of range for %s", int(tgt), fr)
		}
		a := acc[fr]
		c := ClassResult{FR: fr, Target: tgt, Untagged: !a.anyTag}
		if a.anyTag {
			achieved := SL(0)
			var blocking []string
			for l := SL(1); l <= 4; l++ {
				if len(a.failAt[l]) > 0 {
					blocking = a.failAt[l]
					break
				}
				if l <= a.maxLevel {
					achieved = l
				}
			}
			// Evidence only reaches maxLevel; levels above are unassessed
			// and capped there.
			c.Achieved = achieved
			sort.Strings(blocking)
			c.Blocking = blocking
		}
		out.Classes = append(out.Classes, c)
	}
	return out, nil
}
