package core

// RunParallel executes the catalogue with a bounded worker pool: fleets of
// simulated hosts and large generated catalogues (vulnerability scans)
// check mostly-independent requirements, so the audit parallelises well.
// Results keep the deterministic finding-ID order of Run. Requirements
// must be safe for concurrent checking against their host (the simulated
// hosts serialise internally).
//
// Execution goes through the fault-tolerant engine (see RunEngine), so a
// panicking requirement yields an ERROR result and never takes down the
// worker pool. Callers that also want per-check retries or telemetry use
// RunEngine directly.
func (c *Catalog) RunParallel(mode RunMode, workers int) Report {
	rep, _ := c.RunEngine(RunOptions{Mode: mode, Workers: workers})
	return rep
}
