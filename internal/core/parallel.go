package core

import "sync"

// RunParallel executes the catalogue with a bounded worker pool: fleets of
// simulated hosts and large generated catalogues (vulnerability scans)
// check mostly-independent requirements, so the audit parallelises well.
// Results keep the deterministic finding-ID order of Run. Requirements
// must be safe for concurrent checking against their host (the simulated
// hosts serialise internally).
func (c *Catalog) RunParallel(mode RunMode, workers int) Report {
	reqs := c.All()
	if workers <= 1 || len(reqs) <= 1 {
		return c.Run(mode)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	results := make([]Result, len(reqs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				req := reqs[i]
				res := Result{
					FindingID: req.FindingID(),
					Severity:  req.Severity(),
					Before:    req.Check(),
				}
				res.After = res.Before
				if mode == CheckAndEnforce && res.Before != CheckPass {
					res.Enforced = true
					res.Enforcement = req.Enforce()
					res.After = req.Check()
				}
				results[i] = res
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	return Report{Results: results}
}
