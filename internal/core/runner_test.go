package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"veridevops/internal/engine"
)

// scriptedReq is a concurrency-safe scriptable requirement.
type scriptedReq struct {
	Finding
	compliant atomic.Bool
	checks    atomic.Int32
}

func (f *scriptedReq) Check() CheckStatus {
	f.checks.Add(1)
	return CheckBool(f.compliant.Load())
}

func (f *scriptedReq) Enforce() EnforcementStatus {
	f.compliant.Store(true)
	return EnforceSuccess
}

func passingReq(id string) *scriptedReq {
	r := &scriptedReq{Finding: Finding{ID: id, Sev: "medium"}}
	r.compliant.Store(true)
	return r
}

// noBackoff keeps retry tests instant.
func noBackoff(attempts int) engine.Policy {
	return engine.Policy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
}

// faultedCatalog builds the acceptance scenario: a panicking, a flaky
// (fails twice then passes), a slow, and several clean requirements.
func faultedCatalog() *Catalog {
	c := NewCatalog()
	c.MustRegister(InjectFaults(passingReq("V-0001-PANIC"),
		engine.NewFaultInjector(1, engine.FaultPlan{PanicProb: 1})))
	c.MustRegister(InjectFaults(passingReq("V-0002-FLAKY"),
		engine.NewFaultInjector(1, engine.FaultPlan{FailFirst: 2})))
	c.MustRegister(InjectFaults(passingReq("V-0003-SLOW"),
		engine.NewFaultInjector(1, engine.FaultPlan{SlowProb: 1, SlowDelay: time.Millisecond})))
	for i := 4; i < 10; i++ {
		c.MustRegister(passingReq(fmt.Sprintf("V-%04d-OK", i)))
	}
	return c
}

func TestEngineFaultedCatalogCompletes(t *testing.T) {
	// The acceptance scenario: the audit must complete, the panicking
	// requirement must become ERROR (never a crash), the flaky one must
	// pass within the retry budget, and telemetry must account for the
	// retries.
	for _, workers := range []int{1, 4} {
		cat := faultedCatalog()
		rep, st := cat.RunEngine(RunOptions{Mode: CheckOnly, Workers: workers, Checks: noBackoff(4)})
		if len(rep.Results) != 9 {
			t.Fatalf("workers=%d: results = %d, want 9", workers, len(rep.Results))
		}
		byID := map[string]Result{}
		for _, r := range rep.Results {
			byID[r.FindingID] = r
		}
		if got := byID["V-0001-PANIC"].After; got != CheckError {
			t.Errorf("workers=%d: panicking requirement = %v, want ERROR", workers, got)
		}
		if got := byID["V-0002-FLAKY"].After; got != CheckPass {
			t.Errorf("workers=%d: flaky requirement = %v, want PASS after retries", workers, got)
		}
		if got := byID["V-0003-SLOW"].After; got != CheckPass {
			t.Errorf("workers=%d: slow requirement = %v, want PASS", workers, got)
		}
		if st.Errors != 1 {
			t.Errorf("workers=%d: Errors = %d, want 1", workers, st.Errors)
		}
		// Panicking req: 4 attempts, all panic. Flaky: 2 transient + 1 pass.
		perReq := map[string]ReqStats{}
		for _, r := range st.PerRequirement {
			perReq[r.FindingID] = r
		}
		if r := perReq["V-0001-PANIC"]; r.Attempts != 4 || r.Retries != 3 || r.Panics != 4 {
			t.Errorf("workers=%d: panic telemetry = %+v", workers, r)
		}
		if r := perReq["V-0002-FLAKY"]; r.Attempts != 3 || r.Retries != 2 || r.Status != CheckPass {
			t.Errorf("workers=%d: flaky telemetry = %+v", workers, r)
		}
		if r := perReq["V-0004-OK"]; r.Attempts != 1 || r.Retries != 0 {
			t.Errorf("workers=%d: clean telemetry = %+v", workers, r)
		}
		if st.Attempts < 9 || st.Retries != 5 || st.Panics != 4 {
			t.Errorf("workers=%d: aggregate telemetry = %+v", workers, st)
		}
	}
}

func TestEngineParitySequentialVsParallel(t *testing.T) {
	// Run and RunParallel must produce identical reports — order and
	// content — on the same catalogue state, including under retries.
	mk := func() *Catalog {
		c := NewCatalog()
		for i := 0; i < 50; i++ {
			r := passingReq(fmt.Sprintf("V-%04d", i))
			r.compliant.Store(i%3 != 0)
			c.MustRegister(r)
		}
		c.MustRegister(InjectFaults(passingReq("V-9999-FLAKY"),
			engine.NewFaultInjector(7, engine.FaultPlan{FailFirst: 1})))
		return c
	}
	seq, _ := mk().RunEngine(RunOptions{Mode: CheckOnly, Workers: 1, Checks: noBackoff(3)})
	par, _ := mk().RunEngine(RunOptions{Mode: CheckOnly, Workers: 8, Checks: noBackoff(3)})
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("lengths differ: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		if seq.Results[i] != par.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, seq.Results[i], par.Results[i])
		}
	}
}

func TestEnginePanicNeverCrashesRunParallel(t *testing.T) {
	// Without a retry policy (the plain RunParallel path) a panicking
	// check still must not take down the audit.
	cat := faultedCatalog()
	rep := cat.RunParallel(CheckOnly, 4)
	if len(rep.Results) != 9 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.FindingID == "V-0001-PANIC" && r.After != CheckError {
			t.Errorf("panicking requirement = %v, want ERROR", r.After)
		}
		// Without retries the flaky requirement's first transient verdict
		// stands as INCOMPLETE — a verdict, not a crash.
		if r.FindingID == "V-0002-FLAKY" && r.After != CheckIncomplete {
			t.Errorf("flaky requirement without retries = %v, want INCOMPLETE", r.After)
		}
	}
}

// funcReq adapts plain functions to a full requirement.
type funcReq struct {
	Finding
	check func() CheckStatus
}

func (f *funcReq) Check() CheckStatus         { return f.check() }
func (f *funcReq) Enforce() EnforcementStatus { return EnforceSuccess }

// panicEnforceReq panics during enforcement.
type panicEnforceReq struct{ Finding }

func (p *panicEnforceReq) Check() CheckStatus         { return CheckFail }
func (p *panicEnforceReq) Enforce() EnforcementStatus { panic("enforcement agent crashed") }

func TestEngineEnforcePanicIsFailure(t *testing.T) {
	cat := NewCatalog()
	cat.MustRegister(&panicEnforceReq{Finding{ID: "V-0001", Sev: "high"}})
	rep, st := cat.RunEngine(RunOptions{Mode: CheckAndEnforce, Workers: 1})
	r := rep.Results[0]
	if !r.Enforced || r.Enforcement != EnforceFailure {
		t.Errorf("result = %+v, want enforcement FAILURE", r)
	}
	if r.After != CheckFail {
		t.Errorf("After = %v, want FAIL (host unchanged)", r.After)
	}
	if st.Panics != 1 {
		t.Errorf("Panics = %d, want 1", st.Panics)
	}
}

func TestEngineIncompleteRetriedOnlyWhenRequested(t *testing.T) {
	// Default policy: one attempt, INCOMPLETE stands.
	incStatuses := []CheckStatus{CheckIncomplete, CheckPass}
	i := 0
	cat := NewCatalog()
	cat.MustRegister(&funcReq{
		Finding: Finding{ID: "V-0001"},
		check: func() CheckStatus {
			s := incStatuses[i%len(incStatuses)]
			i++
			return s
		},
	})
	rep, st := cat.RunEngine(RunOptions{Mode: CheckOnly, Workers: 1})
	if rep.Results[0].After != CheckIncomplete || st.Attempts != 1 {
		t.Errorf("default policy must not retry: %+v %+v", rep.Results[0], st)
	}
	// With retries the second attempt's PASS wins.
	i = 0
	rep, st = cat.RunEngine(RunOptions{Mode: CheckOnly, Workers: 1, Checks: noBackoff(3)})
	if rep.Results[0].After != CheckPass || st.Attempts != 2 || st.Retries != 1 {
		t.Errorf("retry policy must recover INCOMPLETE: %+v %+v", rep.Results[0], st)
	}
}

func TestRunStatsRendering(t *testing.T) {
	cat := faultedCatalog()
	_, st := cat.RunEngine(RunOptions{Mode: CheckOnly, Workers: 2, Checks: noBackoff(4)})
	if u := st.Utilization(); u < 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	sum := st.Summary()
	for _, want := range []string{"9 requirements", "2 workers", "panics recovered", "utilization"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q: %s", want, sum)
		}
	}
	tbl := st.Table("engine telemetry")
	if len(tbl.Rows) != 9 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
	text := tbl.String()
	for _, want := range []string{"V-0001-PANIC", "ERROR", "attempts"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}

func TestCheckErrorString(t *testing.T) {
	if CheckError.String() != "ERROR" {
		t.Errorf("CheckError = %q", CheckError.String())
	}
}
