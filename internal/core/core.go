// Package core implements the RQCODE ("Requirements as Code") concepts from
// the VeriDevOps project: security requirements represented as first-class
// program values that can be checked against, and enforced upon, a hosting
// environment.
//
// The package mirrors the rqcode.concepts reference specification of
// VeriDevOps deliverable D2.7 (Annex 1): the Checkable and Enforceable
// interfaces, the PASS/FAIL/INCOMPLETE and SUCCESS/FAILURE/INCOMPLETE status
// enumerations, the STIG-finding-shaped Requirement, and their combination
// CheckableEnforceableRequirement.
package core

import "context"

// CheckStatus is the verdict of a requirement check, mirroring the
// rqcode.concepts.Checkable.CheckStatus enumeration.
type CheckStatus int

const (
	// CheckPass means the environment satisfies the requirement.
	CheckPass CheckStatus = iota
	// CheckFail means the environment violates the requirement.
	CheckFail
	// CheckIncomplete means the check could not determine a verdict
	// (for example, the probed subsystem was unreachable).
	CheckIncomplete
	// CheckError means the check itself misbehaved — it panicked or
	// exceeded its time budget — and produced no verdict. The execution
	// engine substitutes this status instead of letting a broken check
	// crash the audit; Report.Counts buckets it with INCOMPLETE.
	CheckError
)

// String returns the STIG-viewer style name of the status.
func (s CheckStatus) String() string {
	switch s {
	case CheckPass:
		return "PASS"
	case CheckFail:
		return "FAIL"
	case CheckIncomplete:
		return "INCOMPLETE"
	case CheckError:
		return "ERROR"
	default:
		return "UNKNOWN"
	}
}

// EnforcementStatus is the verdict of a requirement enforcement, mirroring
// the rqcode.concepts.Enforceable.EnforcementStatus enumeration.
type EnforcementStatus int

const (
	// EnforceSuccess means the environment was modified to satisfy the
	// requirement.
	EnforceSuccess EnforcementStatus = iota
	// EnforceFailure means the modification failed and the environment may
	// still violate the requirement.
	EnforceFailure
	// EnforceIncomplete means enforcement was partially applied or could not
	// be attempted.
	EnforceIncomplete
)

// String returns the name of the status.
func (s EnforcementStatus) String() string {
	switch s {
	case EnforceSuccess:
		return "SUCCESS"
	case EnforceFailure:
		return "FAILURE"
	case EnforceIncomplete:
		return "INCOMPLETE"
	default:
		return "UNKNOWN"
	}
}

// Checkable is a requirement that can be checked programmatically against
// the current environment.
type Checkable interface {
	// Check reports whether the current environment satisfies the
	// requirement.
	Check() CheckStatus
}

// Enforceable is a requirement that can be enforced on the hosting
// environment programmatically.
type Enforceable interface {
	// Enforce modifies the hosting environment to satisfy the requirement.
	Enforce() EnforcementStatus
}

// ContextChecker is an optional extension of Checkable for checks whose
// probes observe a context: the execution engine passes each attempt a
// context that is cancelled when the attempt is abandoned at its timeout
// (engine.AttemptCtx), so a cooperative check can unwind at the next
// probe boundary and release its worker goroutine instead of running to
// completion in the background. Checks that do not implement it are run
// through plain Check and keep the abandon-in-background semantics.
type ContextChecker interface {
	// CheckCtx is Check with cooperative cancellation.
	CheckCtx(ctx context.Context) CheckStatus
}

// CheckFunc adapts an ordinary function to the Checkable interface.
type CheckFunc func() CheckStatus

// Check calls f.
func (f CheckFunc) Check() CheckStatus { return f() }

// EnforceFunc adapts an ordinary function to the Enforceable interface.
type EnforceFunc func() EnforcementStatus

// Enforce calls f.
func (f EnforceFunc) Enforce() EnforcementStatus { return f() }

// CheckBool converts a boolean condition into a CheckStatus.
func CheckBool(ok bool) CheckStatus {
	if ok {
		return CheckPass
	}
	return CheckFail
}

// Predicate adapts a boolean thunk to the Checkable interface.
func Predicate(f func() bool) Checkable {
	return CheckFunc(func() CheckStatus { return CheckBool(f()) })
}

// Const is a Checkable that always returns the given status. It is useful
// for tests and for terminals of pattern compositions.
func Const(s CheckStatus) Checkable {
	return CheckFunc(func() CheckStatus { return s })
}

// Requirement is the STIG-finding-shaped requirement metadata interface. It
// is a direct mapping of the structure of STIG findings as presented on
// stigviewer.com; all member names are self-explanatory.
type Requirement interface {
	FindingID() string
	Version() string
	RuleID() string
	IAControls() string
	Severity() string
	Description() string
	STIG() string
	Date() string
	CheckTextCode() string
	CheckText() string
	FixTextCode() string
	FixText() string
}

// CheckableRequirement is a Requirement augmented with verification means.
type CheckableRequirement interface {
	Requirement
	Checkable
}

// CheckableEnforceableRequirement combines Checkable and Enforceable
// Requirement, mirroring rqcode.concepts.CheckableEnforceableRequirement.
type CheckableEnforceableRequirement interface {
	Requirement
	Checkable
	Enforceable
}

// Finding is a concrete value implementation of Requirement. Embedding a
// Finding into a pattern struct yields the metadata accessors for free, the
// Go analogue of the RQCODE Java inheritance from Requirement.
type Finding struct {
	ID        string // e.g. "V-219157"
	Ver       string // e.g. "Version 1"
	Rule      string // e.g. "SV-109661r1_rule"
	IA        string
	Sev       string // "high" | "medium" | "low"
	Desc      string
	Guide     string // owning STIG, e.g. "Canonical Ubuntu 18.04 LTS STIG"
	Published string // e.g. "2021-06-16"
	CheckCode string
	CheckTxt  string
	FixCode   string
	FixTxt    string
}

// FindingID returns the STIG finding identifier.
func (f Finding) FindingID() string { return f.ID }

// Version returns the finding version string.
func (f Finding) Version() string { return f.Ver }

// RuleID returns the STIG rule identifier.
func (f Finding) RuleID() string { return f.Rule }

// IAControls returns the information-assurance controls field.
func (f Finding) IAControls() string { return f.IA }

// Severity returns the finding severity category.
func (f Finding) Severity() string { return f.Sev }

// Description returns the vulnerability discussion text.
func (f Finding) Description() string { return f.Desc }

// STIG returns the name of the guide the finding belongs to.
func (f Finding) STIG() string { return f.Guide }

// Date returns the publication date of the finding.
func (f Finding) Date() string { return f.Published }

// CheckTextCode returns the check content reference code.
func (f Finding) CheckTextCode() string { return f.CheckCode }

// CheckText returns the manual check procedure text.
func (f Finding) CheckText() string { return f.CheckTxt }

// FixTextCode returns the fix reference code.
func (f Finding) FixTextCode() string { return f.FixCode }

// FixText returns the manual remediation procedure text.
func (f Finding) FixText() string { return f.FixTxt }

// String renders the finding as a plain-text document, a crude parsing of
// the finding specification in the spirit of Requirement.toString of the
// reference specification.
func (f Finding) String() string {
	return "Finding ID: " + f.ID +
		"\nVersion: " + f.Ver +
		"\nRule ID: " + f.Rule +
		"\nIA Controls: " + f.IA +
		"\nSeverity: " + f.Sev +
		"\nSTIG: " + f.Guide +
		"\nDate: " + f.Published +
		"\nDescription: " + f.Desc +
		"\nCheck Text: " + f.CheckTxt +
		"\nFix Text: " + f.FixTxt + "\n"
}
