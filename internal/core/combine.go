package core

// This file provides the status algebra used to compose requirements.
// Composition follows three-valued (Kleene) logic where INCOMPLETE plays
// the role of "unknown": a conjunction is FAIL as soon as one conjunct
// fails, PASS only when all conjuncts pass, and INCOMPLETE otherwise.

// AndStatus combines two check statuses conjunctively.
func AndStatus(a, b CheckStatus) CheckStatus {
	switch {
	case a == CheckFail || b == CheckFail:
		return CheckFail
	case a == CheckIncomplete || b == CheckIncomplete:
		return CheckIncomplete
	default:
		return CheckPass
	}
}

// OrStatus combines two check statuses disjunctively.
func OrStatus(a, b CheckStatus) CheckStatus {
	switch {
	case a == CheckPass || b == CheckPass:
		return CheckPass
	case a == CheckIncomplete || b == CheckIncomplete:
		return CheckIncomplete
	default:
		return CheckFail
	}
}

// NotStatus negates a check status; INCOMPLETE is a fixed point.
func NotStatus(a CheckStatus) CheckStatus {
	switch a {
	case CheckPass:
		return CheckFail
	case CheckFail:
		return CheckPass
	default:
		return CheckIncomplete
	}
}

// AllOf is the conjunction of a set of checkable requirements. An empty
// conjunction passes vacuously.
func AllOf(reqs ...Checkable) Checkable {
	return CheckFunc(func() CheckStatus {
		out := CheckPass
		for _, r := range reqs {
			out = AndStatus(out, r.Check())
			if out == CheckFail {
				return CheckFail
			}
		}
		return out
	})
}

// AnyOf is the disjunction of a set of checkable requirements. An empty
// disjunction fails vacuously.
func AnyOf(reqs ...Checkable) Checkable {
	return CheckFunc(func() CheckStatus {
		out := CheckFail
		for _, r := range reqs {
			out = OrStatus(out, r.Check())
			if out == CheckPass {
				return CheckPass
			}
		}
		return out
	})
}

// Not inverts a checkable requirement.
func Not(r Checkable) Checkable {
	return CheckFunc(func() CheckStatus { return NotStatus(r.Check()) })
}

// Implies returns a requirement that passes when p failing or q passing,
// i.e. the material implication p -> q under Kleene logic.
func Implies(p, q Checkable) Checkable {
	return AnyOf(Not(p), q)
}

// CheckThenEnforce checks the requirement and, only if the check does not
// pass, enforces it and re-checks. It returns the final check status and
// the enforcement status (EnforceSuccess without action when the initial
// check already passed).
func CheckThenEnforce(r CheckableEnforceableRequirement) (CheckStatus, EnforcementStatus) {
	if s := r.Check(); s == CheckPass {
		return s, EnforceSuccess
	}
	es := r.Enforce()
	return r.Check(), es
}
