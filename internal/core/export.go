package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Report export formats: compliance reports feed dashboards (JSON) and
// review documents (markdown) in addition to the terminal table.

// reportDoc is the JSON schema of an exported report.
type reportDoc struct {
	GeneratedAt string          `json:"generated_at,omitempty"`
	Compliance  float64         `json:"compliance"`
	Pass        int             `json:"pass"`
	Fail        int             `json:"fail"`
	Incomplete  int             `json:"incomplete"`
	Results     []reportDocItem `json:"results"`
}

type reportDocItem struct {
	FindingID   string `json:"finding_id"`
	Severity    string `json:"severity"`
	Before      string `json:"before"`
	Enforced    bool   `json:"enforced"`
	Enforcement string `json:"enforcement,omitempty"`
	After       string `json:"after"`
}

// WriteJSON exports the report. The timestamp is included when stamp is
// true (benchmarks and golden tests pass false for reproducibility).
func (r Report) WriteJSON(w io.Writer, stamp bool) error {
	pass, fail, inc := r.Counts()
	doc := reportDoc{
		Compliance: r.Compliance(),
		Pass:       pass, Fail: fail, Incomplete: inc,
	}
	if stamp {
		doc.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	for _, res := range r.Results {
		item := reportDocItem{
			FindingID: res.FindingID,
			Severity:  res.Severity,
			Before:    res.Before.String(),
			Enforced:  res.Enforced,
			After:     res.After.String(),
		}
		if res.Enforced {
			item.Enforcement = res.Enforcement.String()
		}
		doc.Results = append(doc.Results, item)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Markdown renders the report as a markdown table.
func (r Report) Markdown() string {
	var b strings.Builder
	b.WriteString("| Finding | Severity | Before | Enforced | After |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, res := range r.Results {
		enf := "-"
		if res.Enforced {
			enf = res.Enforcement.String()
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			res.FindingID, res.Severity, res.Before, enf, res.After)
	}
	pass, fail, inc := r.Counts()
	fmt.Fprintf(&b, "\n**Compliance: %.1f%%** (%d pass, %d fail, %d incomplete)\n",
		100*r.Compliance(), pass, fail, inc)
	return b.String()
}
