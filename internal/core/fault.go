package core

import (
	"context"
	"time"

	"veridevops/internal/engine"
)

// Fault-injecting decorators: wrap a requirement so its Check misbehaves
// on a deterministic, seeded schedule. The robustness tests and the E7b
// experiment audit catalogues of these to prove the engine survives
// panicking, flaky and slow checks.

// FaultyCheck decorates a Checkable with injected faults. Each Check call
// asks the injector for a fault first: panic (with
// engine.ErrInjectedPanic), a transient INCOMPLETE verdict, a SlowDelay
// stall before delegating, or a clean pass-through.
type FaultyCheck struct {
	Inner    Checkable
	Injector *engine.FaultInjector
	// Sleep implements FaultSlow stalls; nil means time.Sleep.
	Sleep func(time.Duration)
}

// Check applies the next scheduled fault, then delegates.
func (f *FaultyCheck) Check() CheckStatus {
	return f.CheckCtx(context.Background())
}

// CheckCtx is Check with cooperative cancellation: a FaultSlow stall
// observes ctx and returns ERROR instead of sleeping on when the attempt
// is abandoned, and the inner check's CheckCtx is used when it has one.
func (f *FaultyCheck) CheckCtx(ctx context.Context) CheckStatus {
	switch f.Injector.Next() {
	case engine.FaultPanic:
		panic(engine.ErrInjectedPanic)
	case engine.FaultTransient:
		return CheckIncomplete
	case engine.FaultSlow:
		delay := f.Injector.Plan().SlowDelay
		if f.Sleep != nil {
			f.Sleep(delay)
		} else if ctx == nil || ctx.Done() == nil {
			//lint:ignore clockuse seam fallback: no Sleep seam injected and no cancellable context to time against
			time.Sleep(delay)
		} else {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return CheckError
			}
		}
	}
	if cc, ok := f.Inner.(ContextChecker); ok && ctx != nil {
		return cc.CheckCtx(ctx)
	}
	return f.Inner.Check()
}

// FaultyRequirement is a full requirement whose Check is routed through a
// FaultyCheck; metadata and Enforce pass through untouched.
type FaultyRequirement struct {
	CheckableEnforceableRequirement
	faulty FaultyCheck
}

// InjectFaults wraps a requirement with the injector's fault schedule.
func InjectFaults(r CheckableEnforceableRequirement, fi *engine.FaultInjector) *FaultyRequirement {
	return &FaultyRequirement{
		CheckableEnforceableRequirement: r,
		faulty:                          FaultyCheck{Inner: r, Injector: fi},
	}
}

// Check applies the injected fault schedule.
func (f *FaultyRequirement) Check() CheckStatus { return f.faulty.Check() }

// CheckCtx applies the injected fault schedule with cooperative
// cancellation (see FaultyCheck.CheckCtx).
func (f *FaultyRequirement) CheckCtx(ctx context.Context) CheckStatus {
	return f.faulty.CheckCtx(ctx)
}

// CheckStateDigest forwards the inner requirement's digest only when the
// injected fault plan is latency-only (slow stalls never change a
// verdict). Any plan that can panic or flip a verdict INCOMPLETE makes
// the check nondeterministic per call, so the requirement refuses a
// fingerprint and dedup stays off for it.
func (f *FaultyRequirement) CheckStateDigest() (string, bool) {
	p := f.faulty.Injector.Plan()
	if p.PanicProb > 0 || p.TransientProb > 0 || p.FailFirst > 0 {
		return "", false
	}
	sd, ok := f.CheckableEnforceableRequirement.(StateDigester)
	if !ok {
		return "", false
	}
	return sd.CheckStateDigest()
}
