package core

import (
	"time"

	"veridevops/internal/engine"
)

// Fault-injecting decorators: wrap a requirement so its Check misbehaves
// on a deterministic, seeded schedule. The robustness tests and the E7b
// experiment audit catalogues of these to prove the engine survives
// panicking, flaky and slow checks.

// FaultyCheck decorates a Checkable with injected faults. Each Check call
// asks the injector for a fault first: panic (with
// engine.ErrInjectedPanic), a transient INCOMPLETE verdict, a SlowDelay
// stall before delegating, or a clean pass-through.
type FaultyCheck struct {
	Inner    Checkable
	Injector *engine.FaultInjector
	// Sleep implements FaultSlow stalls; nil means time.Sleep.
	Sleep func(time.Duration)
}

// Check applies the next scheduled fault, then delegates.
func (f *FaultyCheck) Check() CheckStatus {
	switch f.Injector.Next() {
	case engine.FaultPanic:
		panic(engine.ErrInjectedPanic)
	case engine.FaultTransient:
		return CheckIncomplete
	case engine.FaultSlow:
		sleep := f.Sleep
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(f.Injector.Plan().SlowDelay)
	}
	return f.Inner.Check()
}

// FaultyRequirement is a full requirement whose Check is routed through a
// FaultyCheck; metadata and Enforce pass through untouched.
type FaultyRequirement struct {
	CheckableEnforceableRequirement
	faulty FaultyCheck
}

// InjectFaults wraps a requirement with the injector's fault schedule.
func InjectFaults(r CheckableEnforceableRequirement, fi *engine.FaultInjector) *FaultyRequirement {
	return &FaultyRequirement{
		CheckableEnforceableRequirement: r,
		faulty:                          FaultyCheck{Inner: r, Injector: fi},
	}
}

// Check applies the injected fault schedule.
func (f *FaultyRequirement) Check() CheckStatus { return f.faulty.Check() }
