package core

import (
	"strings"
	"testing"
)

func newFake(id, sev string, compliant, enforceOK bool) *fakeReq {
	return &fakeReq{
		Finding:   Finding{ID: id, Sev: sev},
		compliant: compliant,
		enforceOK: enforceOK,
	}
}

func TestCatalogRegisterAndLookup(t *testing.T) {
	c := NewCatalog()
	if err := c.Register(newFake("V-1", "medium", true, true)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, ok := c.Lookup("V-1"); !ok {
		t.Error("registered requirement not found")
	}
	if _, ok := c.Lookup("V-404"); ok {
		t.Error("lookup of unknown ID succeeded")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCatalogRejectsDuplicates(t *testing.T) {
	c := NewCatalog()
	if err := c.Register(newFake("V-1", "low", true, true)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(newFake("V-1", "low", true, true)); err == nil {
		t.Error("duplicate registration must fail")
	}
}

func TestCatalogRejectsEmptyID(t *testing.T) {
	c := NewCatalog()
	if err := c.Register(newFake("", "low", true, true)); err == nil {
		t.Error("empty finding ID must be rejected")
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	c := NewCatalog()
	c.MustRegister(newFake("V-1", "low", true, true))
	defer func() {
		if recover() == nil {
			t.Error("MustRegister should panic on duplicate")
		}
	}()
	c.MustRegister(newFake("V-1", "low", true, true))
}

func TestCatalogIDsSorted(t *testing.T) {
	c := NewCatalog()
	for _, id := range []string{"V-9", "V-1", "V-5"} {
		c.MustRegister(newFake(id, "low", true, true))
	}
	ids := c.IDs()
	want := []string{"V-1", "V-5", "V-9"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
}

func TestCatalogSortedCacheInvalidatedByRegister(t *testing.T) {
	c := NewCatalog()
	c.MustRegister(newFake("V-5", "low", true, true))
	c.MustRegister(newFake("V-1", "low", true, true))
	first := c.IDs() // primes the cache
	if len(first) != 2 || first[0] != "V-1" {
		t.Fatalf("IDs = %v", first)
	}
	c.MustRegister(newFake("V-3", "low", true, true))
	got := c.IDs()
	want := []string{"V-1", "V-3", "V-5"}
	if len(got) != len(want) {
		t.Fatalf("IDs after Register = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs after Register = %v, want %v", got, want)
		}
	}
	// All must see the new entry in the same order.
	all := c.All()
	for i, r := range all {
		if r.FindingID() != want[i] {
			t.Fatalf("All[%d] = %s, want %s", i, r.FindingID(), want[i])
		}
	}
}

func TestCatalogIDsReturnsPrivateCopy(t *testing.T) {
	c := NewCatalog()
	c.MustRegister(newFake("V-1", "low", true, true))
	c.MustRegister(newFake("V-2", "low", true, true))
	ids := c.IDs()
	ids[0] = "mutated"
	again := c.IDs()
	if again[0] != "V-1" {
		t.Errorf("caller mutation leaked into the cache: %v", again)
	}
}

func TestRunCheckOnly(t *testing.T) {
	c := NewCatalog()
	bad := newFake("V-2", "high", false, true)
	c.MustRegister(newFake("V-1", "medium", true, true))
	c.MustRegister(bad)

	rep := c.Run(CheckOnly)
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	pass, fail, inc := rep.Counts()
	if pass != 1 || fail != 1 || inc != 0 {
		t.Errorf("Counts = (%d,%d,%d), want (1,1,0)", pass, fail, inc)
	}
	if bad.enforces != 0 {
		t.Error("CheckOnly must not enforce")
	}
	if got := rep.Compliance(); got != 0.5 {
		t.Errorf("Compliance = %v, want 0.5", got)
	}
}

func TestRunCheckAndEnforce(t *testing.T) {
	c := NewCatalog()
	fixable := newFake("V-2", "high", false, true)
	stuck := newFake("V-3", "high", false, false)
	c.MustRegister(newFake("V-1", "medium", true, true))
	c.MustRegister(fixable)
	c.MustRegister(stuck)

	rep := c.Run(CheckAndEnforce)
	pass, fail, _ := rep.Counts()
	if pass != 2 || fail != 1 {
		t.Errorf("Counts = (%d,%d), want pass=2 fail=1", pass, fail)
	}
	if fixable.enforces != 1 || stuck.enforces != 1 {
		t.Error("both failing requirements should have been enforced once")
	}
	failing := rep.Failing()
	if len(failing) != 1 || failing[0] != "V-3" {
		t.Errorf("Failing = %v, want [V-3]", failing)
	}
	// Results must be ordered by finding ID.
	for i, id := range []string{"V-1", "V-2", "V-3"} {
		if rep.Results[i].FindingID != id {
			t.Errorf("Results[%d] = %s, want %s", i, rep.Results[i].FindingID, id)
		}
	}
}

func TestReportString(t *testing.T) {
	c := NewCatalog()
	c.MustRegister(newFake("V-1", "medium", false, true))
	rep := c.Run(CheckAndEnforce)
	s := rep.String()
	for _, want := range []string{"V-1", "FAIL", "SUCCESS", "PASS", "compliance: 100.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestEmptyReportCompliance(t *testing.T) {
	var rep Report
	if rep.Compliance() != 1 {
		t.Error("empty report should be fully compliant")
	}
	if rep.Failing() != nil {
		t.Error("empty report should have no failing entries")
	}
}

func TestCatalogConcurrentAccess(t *testing.T) {
	c := NewCatalog()
	done := make(chan bool)
	go func() {
		for i := 0; i < 100; i++ {
			c.Lookup("V-1")
			c.IDs()
		}
		done <- true
	}()
	for i := 0; i < 100; i++ {
		_ = c.Register(newFake("V-1", "low", true, true)) // only first succeeds
	}
	<-done
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}
