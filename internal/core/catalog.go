package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Catalog is a registry of named checkable/enforceable requirements: the Go
// analogue of the RQCODE pattern catalogue repository. It is safe for
// concurrent use.
type Catalog struct {
	mu   sync.RWMutex
	byID map[string]CheckableEnforceableRequirement
	// sorted caches the finding IDs in sorted order so repeated audit
	// sweeps (IDs, All, RunEngine) don't re-sort an unchanged catalogue.
	// nil means stale; Register invalidates, IDs rebuilds on demand.
	sorted []string
}

// NewCatalog returns an empty catalogue.
func NewCatalog() *Catalog {
	return &Catalog{byID: make(map[string]CheckableEnforceableRequirement)}
}

// Register adds a requirement under its finding ID. Registering a second
// requirement with the same ID is an error: catalogue entries are intended
// to be unique per STIG finding.
func (c *Catalog) Register(r CheckableEnforceableRequirement) error {
	id := r.FindingID()
	if id == "" {
		return fmt.Errorf("core: requirement has empty finding ID")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[id]; dup {
		return fmt.Errorf("core: duplicate requirement %q", id)
	}
	c.byID[id] = r
	c.sorted = nil
	return nil
}

// MustRegister is Register that panics on error, for use in catalogue
// construction code where a duplicate is a programming error.
func (c *Catalog) MustRegister(r CheckableEnforceableRequirement) {
	if err := c.Register(r); err != nil {
		panic(err)
	}
}

// Lookup returns the requirement registered under id.
func (c *Catalog) Lookup(id string) (CheckableEnforceableRequirement, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.byID[id]
	return r, ok
}

// Len reports the number of registered requirements.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byID)
}

// IDs returns the sorted finding IDs of all registered requirements. The
// sorted order is computed once and cached until the next Register, so the
// cost of repeated sweeps is one copy, not one sort.
func (c *Catalog) IDs() []string {
	c.mu.RLock()
	if c.sorted != nil {
		out := make([]string, len(c.sorted))
		copy(out, c.sorted)
		c.mu.RUnlock()
		return out
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.sortedLocked()
	out := make([]string, len(ids))
	copy(out, ids)
	return out
}

// sortedLocked returns the cached sorted order, rebuilding it if stale.
// Callers must hold the write lock.
func (c *Catalog) sortedLocked() []string {
	if c.sorted == nil {
		ids := make([]string, 0, len(c.byID))
		for id := range c.byID {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		c.sorted = ids
	}
	return c.sorted
}

// All returns all requirements ordered by finding ID.
func (c *Catalog) All() []CheckableEnforceableRequirement {
	c.mu.RLock()
	if c.sorted != nil {
		out := c.allLocked(c.sorted)
		c.mu.RUnlock()
		return out
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allLocked(c.sortedLocked())
}

// allLocked materialises the requirements for ids; callers hold c.mu.
func (c *Catalog) allLocked(ids []string) []CheckableEnforceableRequirement {
	out := make([]CheckableEnforceableRequirement, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.byID[id])
	}
	return out
}

// Fingerprints returns the dedup fingerprint (CheckFingerprint) of every
// registered requirement that supports one, keyed by finding ID. Entries
// whose requirement cannot digest its state right now are absent — they
// simply execute instead of deduping.
func (c *Catalog) Fingerprints() map[string]string {
	out := map[string]string{}
	for _, r := range c.All() {
		if fp, ok := CheckFingerprint(r); ok {
			out[r.FindingID()] = fp
		}
	}
	return out
}

// Result is the outcome of running one catalogue entry.
type Result struct {
	FindingID string
	Severity  string
	Before    CheckStatus
	// Enforced reports whether enforcement was attempted (only when the
	// initial check did not pass and enforcement was requested).
	Enforced    bool
	Enforcement EnforcementStatus
	After       CheckStatus
}

// Report is the outcome of a catalogue run.
type Report struct {
	Results []Result
}

// Counts returns how many results ended in each final status. ERROR
// results (checks that panicked or timed out) count as incomplete: no
// verdict was obtained.
func (r Report) Counts() (pass, fail, incomplete int) {
	for _, res := range r.Results {
		switch res.After {
		case CheckPass:
			pass++
		case CheckFail:
			fail++
		default:
			incomplete++
		}
	}
	return
}

// Compliance returns the fraction of requirements whose final status is
// PASS, in [0,1]. An empty report is fully compliant.
func (r Report) Compliance() float64 {
	if len(r.Results) == 0 {
		return 1
	}
	pass, _, _ := r.Counts()
	return float64(pass) / float64(len(r.Results))
}

// Failing returns the finding IDs whose final status is not PASS.
func (r Report) Failing() []string {
	var out []string
	for _, res := range r.Results {
		if res.After != CheckPass {
			out = append(out, res.FindingID)
		}
	}
	return out
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-10s %-10s %-10s\n", "FINDING", "SEV", "BEFORE", "ENFORCE", "AFTER")
	for _, res := range r.Results {
		enf := "-"
		if res.Enforced {
			enf = res.Enforcement.String()
		}
		fmt.Fprintf(&b, "%-12s %-8s %-10s %-10s %-10s\n",
			res.FindingID, res.Severity, res.Before, enf, res.After)
	}
	pass, fail, inc := r.Counts()
	fmt.Fprintf(&b, "compliance: %.1f%% (%d pass, %d fail, %d incomplete)\n",
		100*r.Compliance(), pass, fail, inc)
	return b.String()
}

// RunMode selects what a catalogue run does with failing requirements.
type RunMode int

const (
	// CheckOnly audits without modifying the environment (prevention use).
	CheckOnly RunMode = iota
	// CheckAndEnforce audits and remediates failing requirements
	// (reactive-protection use).
	CheckAndEnforce
)

// Run executes every catalogue entry in finding-ID order. In
// CheckAndEnforce mode, entries whose check does not pass are enforced and
// re-checked. Execution goes through the fault-tolerant engine (see
// RunEngine): a panicking check yields an ERROR result instead of
// crashing the audit.
func (c *Catalog) Run(mode RunMode) Report {
	rep, _ := c.RunEngine(RunOptions{Mode: mode, Workers: 1})
	return rep
}
