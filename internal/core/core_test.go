package core

import (
	"strings"
	"testing"
)

func TestCheckStatusString(t *testing.T) {
	cases := []struct {
		s    CheckStatus
		want string
	}{
		{CheckPass, "PASS"},
		{CheckFail, "FAIL"},
		{CheckIncomplete, "INCOMPLETE"},
		{CheckStatus(42), "UNKNOWN"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("CheckStatus(%d).String() = %q, want %q", int(c.s), got, c.want)
		}
	}
}

func TestEnforcementStatusString(t *testing.T) {
	cases := []struct {
		s    EnforcementStatus
		want string
	}{
		{EnforceSuccess, "SUCCESS"},
		{EnforceFailure, "FAILURE"},
		{EnforceIncomplete, "INCOMPLETE"},
		{EnforcementStatus(-1), "UNKNOWN"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("EnforcementStatus(%d).String() = %q, want %q", int(c.s), got, c.want)
		}
	}
}

func TestCheckBool(t *testing.T) {
	if CheckBool(true) != CheckPass {
		t.Error("CheckBool(true) should be PASS")
	}
	if CheckBool(false) != CheckFail {
		t.Error("CheckBool(false) should be FAIL")
	}
}

func TestCheckFuncAdapter(t *testing.T) {
	calls := 0
	var c Checkable = CheckFunc(func() CheckStatus {
		calls++
		return CheckPass
	})
	if c.Check() != CheckPass || calls != 1 {
		t.Errorf("CheckFunc adapter misbehaved: calls=%d", calls)
	}
}

func TestEnforceFuncAdapter(t *testing.T) {
	var e Enforceable = EnforceFunc(func() EnforcementStatus { return EnforceFailure })
	if e.Enforce() != EnforceFailure {
		t.Error("EnforceFunc adapter did not forward result")
	}
}

func TestPredicate(t *testing.T) {
	on := false
	p := Predicate(func() bool { return on })
	if p.Check() != CheckFail {
		t.Error("predicate over false should FAIL")
	}
	on = true
	if p.Check() != CheckPass {
		t.Error("predicate over true should PASS")
	}
}

func TestConst(t *testing.T) {
	for _, s := range []CheckStatus{CheckPass, CheckFail, CheckIncomplete} {
		if Const(s).Check() != s {
			t.Errorf("Const(%v) did not return %v", s, s)
		}
	}
}

func sampleFinding() Finding {
	return Finding{
		ID:        "V-219157",
		Ver:       "UBTU-18-010017",
		Rule:      "SV-219157r508662_rule",
		IA:        "",
		Sev:       "medium",
		Desc:      "Removing the NIS package decreases risk.",
		Guide:     "Canonical Ubuntu 18.04 LTS STIG",
		Published: "2021-06-16",
		CheckCode: "C-20882r304786_chk",
		CheckTxt:  "Verify that the NIS package is not installed.",
		FixCode:   "F-20881r304787_fix",
		FixTxt:    "Remove the NIS package: sudo apt-get remove nis",
	}
}

func TestFindingAccessors(t *testing.T) {
	f := sampleFinding()
	var r Requirement = f
	pairs := []struct {
		name, got, want string
	}{
		{"FindingID", r.FindingID(), "V-219157"},
		{"Version", r.Version(), "UBTU-18-010017"},
		{"RuleID", r.RuleID(), "SV-219157r508662_rule"},
		{"IAControls", r.IAControls(), ""},
		{"Severity", r.Severity(), "medium"},
		{"STIG", r.STIG(), "Canonical Ubuntu 18.04 LTS STIG"},
		{"Date", r.Date(), "2021-06-16"},
		{"CheckTextCode", r.CheckTextCode(), "C-20882r304786_chk"},
		{"FixTextCode", r.FixTextCode(), "F-20881r304787_fix"},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("%s = %q, want %q", p.name, p.got, p.want)
		}
	}
	if !strings.Contains(r.Description(), "NIS") {
		t.Error("Description lost content")
	}
}

func TestFindingString(t *testing.T) {
	s := sampleFinding().String()
	for _, want := range []string{
		"Finding ID: V-219157",
		"Severity: medium",
		"STIG: Canonical Ubuntu 18.04 LTS STIG",
		"Check Text: Verify that the NIS package is not installed.",
		"Fix Text: Remove the NIS package",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Finding.String() missing %q in:\n%s", want, s)
		}
	}
}
