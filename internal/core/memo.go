package core

import "sync"

// Cross-host check dedup: on a fleet of N identically-configured hosts,
// the same STIG check against the same observable state produces the same
// verdict N times. A requirement that can digest the host state its Check
// reads (StateDigester) gets a stable fingerprint — finding ID plus state
// digest — and a CheckMemo shared across one sweep memoises the first
// execution of each fingerprint, replaying the verdict to every identical
// co-tenant. The digest stands in for the cheap fleet-inventory read a
// live audit agent has; the memoised execution stands in for the per-check
// transport round-trip it avoids.

// StateDigester is an optional extension of Checkable for requirements
// that can produce a canonical digest of exactly the host state their
// Check reads. Two requirements with equal fingerprints
// (CheckFingerprint) must produce equal Check verdicts; anything
// nondeterministic per host — injected faults, time-dependent probes —
// must not implement it (or must report ok=false).
type StateDigester interface {
	// CheckStateDigest returns the canonical state digest and whether one
	// is available right now (an unreachable host, for example, is not
	// digestable).
	CheckStateDigest() (string, bool)
}

// CheckFingerprint returns the dedup key of a requirement: its finding ID
// joined with the canonical digest of the host state its Check reads.
// ok=false when the requirement does not support digesting or the digest
// probe itself failed (a probe panic — say an unreachable host — is
// absorbed here and simply disables dedup for that requirement).
func CheckFingerprint(req Requirement) (fp string, ok bool) {
	sd, is := req.(StateDigester)
	if !is {
		return "", false
	}
	defer func() {
		if recover() != nil {
			fp, ok = "", false
		}
	}()
	d, dok := sd.CheckStateDigest()
	if !dok {
		return "", false
	}
	return req.FindingID() + "\x00" + d, true
}

// CheckMemo memoises check executions by fingerprint within one audit
// sweep. It is single-flight: the first arrival for a fingerprint
// executes, concurrent arrivals for the same fingerprint wait for that
// execution and replay its verdict, so each distinct (requirement, state)
// pair is executed exactly once per sweep no matter how many hosts share
// it. Safe for concurrent use; share one memo per sweep, never across
// sweeps (host state may move between sweeps).
type CheckMemo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

type memoEntry struct {
	done chan struct{}
	res  Result
}

// NewCheckMemo returns an empty memo.
func NewCheckMemo() *CheckMemo {
	return &CheckMemo{entries: map[string]*memoEntry{}}
}

// Unique reports how many distinct fingerprints have been executed or are
// in flight.
func (m *CheckMemo) Unique() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// acquire resolves a fingerprint: a hit blocks until the in-flight
// execution completes and returns its result; a miss registers the caller
// as the executor, which must call fulfill exactly once.
func (m *CheckMemo) acquire(key string) (Result, bool) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		return e.res, true
	}
	m.entries[key] = &memoEntry{done: make(chan struct{})}
	m.mu.Unlock()
	return Result{}, false
}

// fulfill publishes the executor's result and wakes every waiter.
func (m *CheckMemo) fulfill(key string, res Result) {
	m.mu.Lock()
	e := m.entries[key]
	m.mu.Unlock()
	if e == nil {
		return
	}
	e.res = res
	close(e.done)
}
