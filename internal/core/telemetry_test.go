package core

import (
	"bytes"
	"testing"

	"veridevops/internal/telemetry"
)

// TestRunEngineSpanTreeUnderFaults audits the seeded faulted catalogue on
// a parallel worker pool with tracing on, and checks the span tree's
// shape: one "check" span per requirement, per-attempt children whose
// outcome tags match the run telemetry (the panicking requirement's
// attempts are all panics, the flaky one's retries end in ok), and dedup
// replays absent because no memo is wired.
func TestRunEngineSpanTreeUnderFaults(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.New(&buf)
	root := tr.Root("run")
	m := telemetry.NewMetrics()

	cat := faultedCatalog()
	rep, st := cat.RunEngine(RunOptions{
		Mode:    CheckOnly,
		Workers: 4,
		Checks:  noBackoff(3),
		Span:    root,
		Metrics: m,
	})
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(rep.Results) != 9 {
		t.Fatalf("results = %d, want 9", len(rep.Results))
	}

	recs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "run" {
		t.Fatalf("roots = %+v, want one run span", roots)
	}

	checks := map[string]*telemetry.Node{}
	for _, n := range roots[0].Children {
		if n.Name != "check" {
			t.Fatalf("run child %q, want check", n.Name)
		}
		checks[n.Tags["finding"]] = n
	}
	if len(checks) != 9 {
		t.Fatalf("check spans = %d, want 9 (one per requirement)", len(checks))
	}

	outcomes := func(n *telemetry.Node) []string {
		var out []string
		for _, c := range n.Children {
			if c.Name == "attempt" {
				out = append(out, c.Tags["outcome"])
			}
		}
		return out
	}

	// The panicking requirement burns its whole budget on panics and ends
	// ERROR; the flaky one pays two transients then passes.
	pan := checks["V-0001-PANIC"]
	if pan == nil || pan.Tags["status"] != "ERROR" {
		t.Fatalf("panic check span = %+v", pan)
	}
	if got := outcomes(pan); len(got) != 3 || got[0] != "panic" || got[1] != "panic" || got[2] != "panic" {
		t.Errorf("panic attempts = %v, want [panic panic panic]", got)
	}
	flaky := checks["V-0002-FLAKY"]
	if flaky == nil || flaky.Tags["status"] != "PASS" {
		t.Fatalf("flaky check span = %+v", flaky)
	}
	if got := outcomes(flaky); len(got) != 3 || got[0] != "transient" || got[1] != "transient" || got[2] != "ok" {
		t.Errorf("flaky attempts = %v, want [transient transient ok]", got)
	}

	// Attempt spans across the tree must agree with the run telemetry.
	attempts := 0
	roots[0].Walk(func(n *telemetry.Node) {
		if n.Name == "attempt" {
			attempts++
		}
	})
	if attempts != st.Attempts {
		t.Errorf("attempt spans = %d, RunStats.Attempts = %d", attempts, st.Attempts)
	}

	// And so must the metrics registry.
	if got := m.Counter("engine.checks"); got != 9 {
		t.Errorf("engine.checks = %d, want 9", got)
	}
	if got := m.Counter("engine.attempts"); got != int64(st.Attempts) {
		t.Errorf("engine.attempts = %d, want %d", got, st.Attempts)
	}
	if got := m.Counter("engine.panics"); got != int64(st.Panics) {
		t.Errorf("engine.panics = %d, want %d", got, st.Panics)
	}
	if h := m.Histogram("engine.check_wall"); h.Count != 9 {
		t.Errorf("engine.check_wall count = %d, want 9", h.Count)
	}
}

// TestRunEngineEnforceSpans checks remediation shows up as an "enforce"
// span (with its own attempt) under the failing requirement's check span.
func TestRunEngineEnforceSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.New(&buf)
	root := tr.Root("run")

	c := NewCatalog()
	r := passingReq("V-0001")
	r.compliant.Store(false)
	c.MustRegister(r)
	rep, _ := c.RunEngine(RunOptions{Mode: CheckAndEnforce, Span: root})
	root.End()
	tr.Flush()
	if rep.Results[0].After != CheckPass {
		t.Fatalf("enforcement failed: %+v", rep.Results[0])
	}

	recs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	enf := roots[0].Find("enforce")
	if enf == nil {
		t.Fatal("no enforce span in tree")
	}
	if enf.Tags["result"] != "SUCCESS" {
		t.Errorf("enforce result tag = %q, want SUCCESS", enf.Tags["result"])
	}
	if len(enf.Children) != 1 || enf.Children[0].Name != "attempt" {
		t.Errorf("enforce children = %+v, want one attempt", enf.Children)
	}
}
