package core

// Push-based incremental evaluation needs to know, before running a
// check, which host-state slots the check reads — so that when a host
// event names the slot it touched (host.StateKey), the fleet streamer
// can map the key through a reverse dependency index to exactly the
// affected checks instead of re-auditing the whole host. KeyReader is
// that declaration seam; it is the static companion of StateDigester
// (which hashes the state's *values* for dedup, where KeyReader names
// the state's *identity* for indexing).

// KeyReader is an optional extension of Checkable for requirements that
// can enumerate the host-state keys their Check reads, in the canonical
// "kind:name" form of host.StateKey.String (e.g. "pkg:telnetd",
// "cfg:/etc/login.defs:ENCRYPT_METHOD", "audit:Logon"). The declaration
// must be static and complete: if Check reads a slot the requirement
// does not declare, a change to that slot will not re-trigger the check
// under push evaluation. Requirements that cannot enumerate their reads
// simply don't implement the interface and fall back to full re-audits
// (and the daemon's periodic fallback sweep).
type KeyReader interface {
	// CheckStateKeys returns the canonical state keys the Check reads.
	CheckStateKeys() []string
}

// CheckKeys returns the state keys a requirement declares it reads, and
// whether the requirement declares any. ok=false — the requirement does
// not implement KeyReader, declares an empty set, or its declaration
// panicked — means the requirement is unindexable and must be re-run on
// every change of its host. Mirrors CheckFingerprint's panic absorption
// so one misbehaving declaration degrades to full re-audits instead of
// crashing the indexer.
func CheckKeys(req Requirement) (keys []string, ok bool) {
	kr, is := req.(KeyReader)
	if !is {
		return nil, false
	}
	defer func() {
		if recover() != nil {
			keys, ok = nil, false
		}
	}()
	ks := kr.CheckStateKeys()
	if len(ks) == 0 {
		return nil, false
	}
	return ks, true
}
