package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func exportReport() Report {
	c := NewCatalog()
	c.MustRegister(newFake("V-1", "medium", true, true))
	c.MustRegister(newFake("V-2", "high", false, true))
	c.MustRegister(newFake("V-3", "high", false, false))
	return c.Run(CheckAndEnforce)
}

func TestReportWriteJSON(t *testing.T) {
	rep := exportReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		GeneratedAt string  `json:"generated_at"`
		Compliance  float64 `json:"compliance"`
		Pass        int     `json:"pass"`
		Fail        int     `json:"fail"`
		Results     []struct {
			FindingID   string `json:"finding_id"`
			Enforcement string `json:"enforcement"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.GeneratedAt != "" {
		t.Error("unstamped export must omit the timestamp")
	}
	if doc.Pass != 2 || doc.Fail != 1 || len(doc.Results) != 3 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.Results[2].FindingID != "V-3" || doc.Results[2].Enforcement != "FAILURE" {
		t.Errorf("V-3 = %+v", doc.Results[2])
	}
}

func TestReportWriteJSONStamped(t *testing.T) {
	var buf bytes.Buffer
	if err := exportReport().WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "generated_at") {
		t.Error("stamped export must carry a timestamp")
	}
}

func TestReportMarkdown(t *testing.T) {
	md := exportReport().Markdown()
	for _, want := range []string{
		"| Finding | Severity |",
		"| V-2 | high | FAIL | SUCCESS | PASS |",
		"| V-3 | high | FAIL | FAILURE | FAIL |",
		"**Compliance: 66.7%**",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
