package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"veridevops/internal/engine"
)

// digestReq is a test requirement with a controllable state digest and an
// execution counter, for exercising the cross-host check memo.
type digestReq struct {
	Finding
	digest  string
	ok      bool
	verdict CheckStatus
	calls   *atomic.Int64
	delay   time.Duration
}

func (d *digestReq) Check() CheckStatus {
	if d.calls != nil {
		d.calls.Add(1)
	}
	if d.delay > 0 {
		//lint:ignore clockuse the fake check must really block so concurrent memo callers overlap in wall time
		time.Sleep(d.delay)
	}
	return d.verdict
}

func (d *digestReq) Enforce() EnforcementStatus { return EnforceSuccess }

func (d *digestReq) CheckStateDigest() (string, bool) { return d.digest, d.ok }

func TestCheckFingerprint(t *testing.T) {
	r := &digestReq{Finding: Finding{ID: "V-1"}, digest: "state-a", ok: true}
	fp, ok := CheckFingerprint(r)
	if !ok {
		t.Fatal("digestable requirement must fingerprint")
	}
	if fp != "V-1\x00state-a" {
		t.Errorf("fingerprint = %q", fp)
	}
	// Same finding, different state: distinct fingerprints.
	r2 := &digestReq{Finding: Finding{ID: "V-1"}, digest: "state-b", ok: true}
	if fp2, _ := CheckFingerprint(r2); fp2 == fp {
		t.Error("distinct states must not collide")
	}
	// Undigestable requirements don't fingerprint.
	r.ok = false
	if _, ok := CheckFingerprint(r); ok {
		t.Error("ok=false digest must disable fingerprinting")
	}
	// Plain requirements don't fingerprint.
	type plain struct {
		Finding
		CheckFunc
		EnforceFunc
	}
	if _, ok := CheckFingerprint(&plain{Finding: Finding{ID: "V-2"}}); ok {
		t.Error("non-digester must not fingerprint")
	}
}

// panicDigester's digest probe itself panics (an unreachable host).
type panicDigester struct {
	Finding
	CheckFunc
	EnforceFunc
}

func (panicDigester) CheckStateDigest() (string, bool) { panic("unreachable") }

func TestCheckFingerprintAbsorbsDigestPanic(t *testing.T) {
	if _, ok := CheckFingerprint(&panicDigester{Finding: Finding{ID: "V-3"}}); ok {
		t.Error("a panicking digest probe must disable dedup, not crash")
	}
}

func TestCheckMemoSingleFlight(t *testing.T) {
	m := NewCheckMemo()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, hit := m.acquire("k")
			if !hit {
				calls.Add(1)
				//lint:ignore clockuse widening a real race window; virtual time cannot interleave goroutines
				time.Sleep(5 * time.Millisecond)
				m.fulfill("k", Result{FindingID: "V-1", After: CheckPass})
				return
			}
			if res.FindingID != "V-1" || res.After != CheckPass {
				t.Errorf("replayed result = %+v", res)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("executors = %d, want exactly 1", calls.Load())
	}
	if m.Unique() != 1 {
		t.Errorf("Unique = %d, want 1", m.Unique())
	}
}

func TestRunEngineDedupsSharedFingerprints(t *testing.T) {
	// 8 "hosts" of one identically-configured fleet: the same finding with
	// the same state digest registered across 8 catalogues sharing a memo.
	memo := NewCheckMemo()
	var calls atomic.Int64
	var hits, misses int
	for i := 0; i < 8; i++ {
		cat := NewCatalog()
		cat.MustRegister(&digestReq{
			Finding: Finding{ID: "V-9", Sev: "medium"},
			digest:  "fleet-state", ok: true,
			verdict: CheckFail, calls: &calls,
		})
		rep, st := cat.RunEngine(RunOptions{Mode: CheckOnly, Workers: 1, Memo: memo})
		if rep.Results[0].After != CheckFail {
			t.Fatalf("host %d verdict = %s", i, rep.Results[0].After)
		}
		hits += st.DedupHits
		misses += st.DedupMisses
	}
	if calls.Load() != 1 {
		t.Errorf("shared check executed %d times, want 1", calls.Load())
	}
	if misses != 1 || hits != 7 {
		t.Errorf("dedup hits/misses = %d/%d, want 7/1", hits, misses)
	}
}

func TestRunEngineDedupOffWithoutMemoOrInEnforceMode(t *testing.T) {
	var calls atomic.Int64
	mk := func() *Catalog {
		cat := NewCatalog()
		cat.MustRegister(&digestReq{
			Finding: Finding{ID: "V-9"}, digest: "s", ok: true,
			verdict: CheckPass, calls: &calls,
		})
		return cat
	}
	// No memo: every run executes.
	mk().RunEngine(RunOptions{Mode: CheckOnly})
	mk().RunEngine(RunOptions{Mode: CheckOnly})
	if calls.Load() != 2 {
		t.Fatalf("memo-less runs executed %d checks, want 2", calls.Load())
	}
	// Enforce mode never consults the memo, even when one is wired.
	calls.Store(0)
	memo := NewCheckMemo()
	mk().RunEngine(RunOptions{Mode: CheckAndEnforce, Memo: memo})
	mk().RunEngine(RunOptions{Mode: CheckAndEnforce, Memo: memo})
	if calls.Load() != 2 {
		t.Errorf("enforce-mode runs executed %d checks, want 2 (dedup must stay off)", calls.Load())
	}
	if memo.Unique() != 0 {
		t.Errorf("enforce mode populated the memo: Unique = %d", memo.Unique())
	}
}

func TestRunEngineDedupConcurrentHosts(t *testing.T) {
	// Concurrent catalogue runs over one memo: single-flight across
	// goroutines, identical verdicts everywhere.
	memo := NewCheckMemo()
	var calls atomic.Int64
	var wg sync.WaitGroup
	reports := make([]Report, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cat := NewCatalog()
			for j := 0; j < 4; j++ {
				cat.MustRegister(&digestReq{
					Finding: Finding{ID: fmt.Sprintf("V-%d", j)},
					digest:  "shared", ok: true,
					verdict: CheckFail, calls: &calls, delay: time.Millisecond,
				})
			}
			reports[i], _ = cat.RunEngine(RunOptions{Mode: CheckOnly, Workers: 2, Memo: memo})
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Errorf("executed %d checks, want 4 (one per distinct fingerprint)", calls.Load())
	}
	for i, rep := range reports {
		for _, res := range rep.Results {
			if res.After != CheckFail {
				t.Fatalf("host %d %s verdict = %s, want FAIL", i, res.FindingID, res.After)
			}
		}
	}
}

func TestFaultyRequirementDigestGating(t *testing.T) {
	inner := &digestReq{Finding: Finding{ID: "V-1"}, digest: "s", ok: true, verdict: CheckPass}
	// Latency-only plan: digest passes through.
	slow := InjectFaults(inner, engine.NewFaultInjector(1, engine.FaultPlan{SlowProb: 1}))
	if _, ok := CheckFingerprint(slow); !ok {
		t.Error("latency-only faults must keep the requirement dedupable")
	}
	// Verdict-changing plans: no fingerprint.
	for name, plan := range map[string]engine.FaultPlan{
		"panic":     {PanicProb: 0.5},
		"transient": {TransientProb: 0.5},
		"failfirst": {FailFirst: 2},
	} {
		fr := InjectFaults(inner, engine.NewFaultInjector(1, plan))
		if _, ok := CheckFingerprint(fr); ok {
			t.Errorf("%s plan must disable dedup", name)
		}
	}
}
