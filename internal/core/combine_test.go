package core

import (
	"testing"
	"testing/quick"
)

func clamp(s CheckStatus) CheckStatus {
	switch s {
	case CheckPass, CheckFail, CheckIncomplete:
		return s
	default:
		// Map arbitrary quick-generated values into the domain.
		v := int(s) % 3
		if v < 0 {
			v = -v
		}
		return CheckStatus(v)
	}
}

func TestAndStatusTruthTable(t *testing.T) {
	want := map[[2]CheckStatus]CheckStatus{
		{CheckPass, CheckPass}:             CheckPass,
		{CheckPass, CheckFail}:             CheckFail,
		{CheckPass, CheckIncomplete}:       CheckIncomplete,
		{CheckFail, CheckFail}:             CheckFail,
		{CheckFail, CheckIncomplete}:       CheckFail,
		{CheckIncomplete, CheckIncomplete}: CheckIncomplete,
	}
	for k, w := range want {
		if got := AndStatus(k[0], k[1]); got != w {
			t.Errorf("AndStatus(%v,%v) = %v, want %v", k[0], k[1], got, w)
		}
		if got := AndStatus(k[1], k[0]); got != w {
			t.Errorf("AndStatus(%v,%v) = %v, want %v (commutativity)", k[1], k[0], got, w)
		}
	}
}

func TestOrStatusTruthTable(t *testing.T) {
	want := map[[2]CheckStatus]CheckStatus{
		{CheckPass, CheckPass}:             CheckPass,
		{CheckPass, CheckFail}:             CheckPass,
		{CheckPass, CheckIncomplete}:       CheckPass,
		{CheckFail, CheckFail}:             CheckFail,
		{CheckFail, CheckIncomplete}:       CheckIncomplete,
		{CheckIncomplete, CheckIncomplete}: CheckIncomplete,
	}
	for k, w := range want {
		if got := OrStatus(k[0], k[1]); got != w {
			t.Errorf("OrStatus(%v,%v) = %v, want %v", k[0], k[1], got, w)
		}
		if got := OrStatus(k[1], k[0]); got != w {
			t.Errorf("OrStatus(%v,%v) = %v, want %v (commutativity)", k[1], k[0], got, w)
		}
	}
}

func TestNotStatus(t *testing.T) {
	if NotStatus(CheckPass) != CheckFail || NotStatus(CheckFail) != CheckPass {
		t.Error("NotStatus must swap PASS and FAIL")
	}
	if NotStatus(CheckIncomplete) != CheckIncomplete {
		t.Error("NotStatus must fix INCOMPLETE")
	}
}

// Property: double negation is the identity on the status domain.
func TestNotStatusInvolution(t *testing.T) {
	f := func(raw CheckStatus) bool {
		s := clamp(raw)
		return NotStatus(NotStatus(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan duality between AndStatus and OrStatus.
func TestDeMorganStatus(t *testing.T) {
	f := func(rawA, rawB CheckStatus) bool {
		a, b := clamp(rawA), clamp(rawB)
		return NotStatus(AndStatus(a, b)) == OrStatus(NotStatus(a), NotStatus(b)) &&
			NotStatus(OrStatus(a, b)) == AndStatus(NotStatus(a), NotStatus(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AndStatus and OrStatus are associative.
func TestStatusAssociativity(t *testing.T) {
	f := func(rawA, rawB, rawC CheckStatus) bool {
		a, b, c := clamp(rawA), clamp(rawB), clamp(rawC)
		return AndStatus(AndStatus(a, b), c) == AndStatus(a, AndStatus(b, c)) &&
			OrStatus(OrStatus(a, b), c) == OrStatus(a, OrStatus(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllOf(t *testing.T) {
	if AllOf().Check() != CheckPass {
		t.Error("empty AllOf should pass vacuously")
	}
	if AllOf(Const(CheckPass), Const(CheckPass)).Check() != CheckPass {
		t.Error("AllOf(pass,pass) should pass")
	}
	if AllOf(Const(CheckPass), Const(CheckFail)).Check() != CheckFail {
		t.Error("AllOf with a failing conjunct should fail")
	}
	if AllOf(Const(CheckPass), Const(CheckIncomplete)).Check() != CheckIncomplete {
		t.Error("AllOf with an incomplete conjunct should be incomplete")
	}
}

func TestAllOfShortCircuits(t *testing.T) {
	called := false
	spy := CheckFunc(func() CheckStatus { called = true; return CheckPass })
	if AllOf(Const(CheckFail), spy).Check() != CheckFail {
		t.Fatal("AllOf should fail")
	}
	if called {
		t.Error("AllOf must short-circuit after a FAIL")
	}
}

func TestAnyOf(t *testing.T) {
	if AnyOf().Check() != CheckFail {
		t.Error("empty AnyOf should fail vacuously")
	}
	if AnyOf(Const(CheckFail), Const(CheckPass)).Check() != CheckPass {
		t.Error("AnyOf with a passing disjunct should pass")
	}
	if AnyOf(Const(CheckFail), Const(CheckFail)).Check() != CheckFail {
		t.Error("AnyOf(fail,fail) should fail")
	}
	if AnyOf(Const(CheckFail), Const(CheckIncomplete)).Check() != CheckIncomplete {
		t.Error("AnyOf with an incomplete disjunct should be incomplete")
	}
}

func TestAnyOfShortCircuits(t *testing.T) {
	called := false
	spy := CheckFunc(func() CheckStatus { called = true; return CheckFail })
	if AnyOf(Const(CheckPass), spy).Check() != CheckPass {
		t.Fatal("AnyOf should pass")
	}
	if called {
		t.Error("AnyOf must short-circuit after a PASS")
	}
}

func TestImplies(t *testing.T) {
	cases := []struct {
		p, q, want CheckStatus
	}{
		{CheckFail, CheckFail, CheckPass},
		{CheckFail, CheckPass, CheckPass},
		{CheckPass, CheckPass, CheckPass},
		{CheckPass, CheckFail, CheckFail},
		{CheckIncomplete, CheckFail, CheckIncomplete},
		{CheckPass, CheckIncomplete, CheckIncomplete},
	}
	for _, c := range cases {
		if got := Implies(Const(c.p), Const(c.q)).Check(); got != c.want {
			t.Errorf("Implies(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

// fakeReq is a minimal CheckableEnforceableRequirement for runner tests.
type fakeReq struct {
	Finding
	compliant bool
	enforceOK bool
	checks    int
	enforces  int
}

func (f *fakeReq) Check() CheckStatus {
	f.checks++
	return CheckBool(f.compliant)
}

func (f *fakeReq) Enforce() EnforcementStatus {
	f.enforces++
	if f.enforceOK {
		f.compliant = true
		return EnforceSuccess
	}
	return EnforceFailure
}

func TestCheckThenEnforceAlreadyCompliant(t *testing.T) {
	r := &fakeReq{Finding: Finding{ID: "V-1"}, compliant: true}
	after, es := CheckThenEnforce(r)
	if after != CheckPass || es != EnforceSuccess {
		t.Errorf("got (%v,%v), want (PASS,SUCCESS)", after, es)
	}
	if r.enforces != 0 {
		t.Error("enforcement must not run when the check passes")
	}
}

func TestCheckThenEnforceRemediates(t *testing.T) {
	r := &fakeReq{Finding: Finding{ID: "V-2"}, compliant: false, enforceOK: true}
	after, es := CheckThenEnforce(r)
	if after != CheckPass || es != EnforceSuccess {
		t.Errorf("got (%v,%v), want (PASS,SUCCESS)", after, es)
	}
	if r.enforces != 1 {
		t.Errorf("enforces = %d, want 1", r.enforces)
	}
}

func TestCheckThenEnforceFailure(t *testing.T) {
	r := &fakeReq{Finding: Finding{ID: "V-3"}, compliant: false, enforceOK: false}
	after, es := CheckThenEnforce(r)
	if after != CheckFail || es != EnforceFailure {
		t.Errorf("got (%v,%v), want (FAIL,FAILURE)", after, es)
	}
}
