package core

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// keyedReq is a test requirement declaring the state keys its Check
// reads, with an execution counter for subset-run assertions.
type keyedReq struct {
	Finding
	keys    []string
	verdict CheckStatus
	calls   *atomic.Int64
}

func (k *keyedReq) Check() CheckStatus {
	if k.calls != nil {
		k.calls.Add(1)
	}
	return k.verdict
}

func (k *keyedReq) Enforce() EnforcementStatus { return EnforceSuccess }

func (k *keyedReq) CheckStateKeys() []string { return k.keys }

func TestCheckKeys(t *testing.T) {
	r := &keyedReq{Finding: Finding{ID: "V-1"}, keys: []string{"pkg:telnetd"}}
	keys, ok := CheckKeys(r)
	if !ok || !reflect.DeepEqual(keys, []string{"pkg:telnetd"}) {
		t.Errorf("CheckKeys = (%v, %v), want ([pkg:telnetd], true)", keys, ok)
	}
	// An empty declaration is the same as no declaration.
	r.keys = nil
	if _, ok := CheckKeys(r); ok {
		t.Error("empty key set must report ok=false")
	}
	// Plain requirements don't declare keys.
	type plain struct {
		Finding
		CheckFunc
		EnforceFunc
	}
	if _, ok := CheckKeys(&plain{Finding: Finding{ID: "V-2"}}); ok {
		t.Error("non-KeyReader must not declare keys")
	}
}

// panicKeyReader's declaration itself panics; the indexer must degrade
// to full re-audits, not crash.
type panicKeyReader struct {
	Finding
	CheckFunc
	EnforceFunc
}

func (panicKeyReader) CheckStateKeys() []string { panic("broken declaration") }

func TestCheckKeysAbsorbsPanic(t *testing.T) {
	if _, ok := CheckKeys(&panicKeyReader{Finding: Finding{ID: "V-3"}}); ok {
		t.Error("a panicking key declaration must disable indexing, not crash")
	}
}

func TestRunEngineOnlySubset(t *testing.T) {
	c := NewCatalog()
	var a, b, d atomic.Int64
	c.MustRegister(&keyedReq{Finding: Finding{ID: "V-2"}, verdict: CheckPass, calls: &b})
	c.MustRegister(&keyedReq{Finding: Finding{ID: "V-1"}, verdict: CheckFail, calls: &a})
	c.MustRegister(&keyedReq{Finding: Finding{ID: "V-3"}, verdict: CheckPass, calls: &d})

	rep, stats := c.RunEngine(RunOptions{Only: []string{"V-3", "V-1", "V-404"}})
	if a.Load() != 1 || b.Load() != 0 || d.Load() != 1 {
		t.Errorf("calls = V-1:%d V-2:%d V-3:%d, want 1/0/1", a.Load(), b.Load(), d.Load())
	}
	if stats.Requirements != 2 || len(rep.Results) != 2 {
		t.Fatalf("subset run covered %d requirements, want 2", stats.Requirements)
	}
	// The subset report keeps finding-ID order regardless of Only's order.
	if rep.Results[0].FindingID != "V-1" || rep.Results[1].FindingID != "V-3" {
		t.Errorf("subset order = %s, %s; want V-1, V-3", rep.Results[0].FindingID, rep.Results[1].FindingID)
	}

	// An empty non-nil Only runs nothing; nil runs everything.
	rep, _ = c.RunEngine(RunOptions{Only: []string{}})
	if len(rep.Results) != 0 {
		t.Errorf("empty Only ran %d requirements, want 0", len(rep.Results))
	}
	rep, _ = c.RunEngine(RunOptions{})
	if len(rep.Results) != 3 {
		t.Errorf("nil Only ran %d requirements, want 3", len(rep.Results))
	}
}
