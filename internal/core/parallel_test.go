package core

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// atomicReq is a concurrency-safe fake requirement.
type atomicReq struct {
	Finding
	compliant atomic.Bool
	enforces  atomic.Int32
}

func (a *atomicReq) Check() CheckStatus {
	return CheckBool(a.compliant.Load())
}

func (a *atomicReq) Enforce() EnforcementStatus {
	a.enforces.Add(1)
	a.compliant.Store(true)
	return EnforceSuccess
}

func parallelCatalog(n int, failEvery int) (*Catalog, []*atomicReq) {
	c := NewCatalog()
	reqs := make([]*atomicReq, 0, n)
	for i := 0; i < n; i++ {
		r := &atomicReq{Finding: Finding{ID: fmt.Sprintf("V-%04d", i), Sev: "low"}}
		r.compliant.Store(failEvery == 0 || i%failEvery != 0)
		c.MustRegister(r)
		reqs = append(reqs, r)
	}
	return c, reqs
}

func TestRunParallelMatchesSequential(t *testing.T) {
	seqCat, _ := parallelCatalog(100, 3)
	parCat, _ := parallelCatalog(100, 3)

	seq := seqCat.Run(CheckOnly)
	par := parCat.RunParallel(CheckOnly, 8)
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("lengths differ: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		if seq.Results[i] != par.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, seq.Results[i], par.Results[i])
		}
	}
}

func TestRunParallelEnforces(t *testing.T) {
	cat, reqs := parallelCatalog(64, 2)
	rep := cat.RunParallel(CheckAndEnforce, 8)
	if rep.Compliance() != 1 {
		t.Errorf("compliance = %v", rep.Compliance())
	}
	enforced := 0
	for _, r := range reqs {
		enforced += int(r.enforces.Load())
	}
	if enforced != 32 {
		t.Errorf("enforcements = %d, want 32", enforced)
	}
	// Deterministic ordering by finding ID.
	for i := 1; i < len(rep.Results); i++ {
		if rep.Results[i-1].FindingID >= rep.Results[i].FindingID {
			t.Fatal("results out of order")
		}
	}
}

func TestRunParallelDegenerateWorkers(t *testing.T) {
	cat, _ := parallelCatalog(5, 2)
	if rep := cat.RunParallel(CheckOnly, 0); len(rep.Results) != 5 {
		t.Error("workers<=1 must fall back to sequential")
	}
	cat2, _ := parallelCatalog(2, 0)
	if rep := cat2.RunParallel(CheckOnly, 50); len(rep.Results) != 2 {
		t.Error("worker count must clamp to the catalogue size")
	}
	empty := NewCatalog()
	if rep := empty.RunParallel(CheckAndEnforce, 4); len(rep.Results) != 0 {
		t.Error("empty catalogue")
	}
}
