package core

import (
	"context"
	"fmt"
	"time"

	"veridevops/internal/engine"
	"veridevops/internal/report"
	"veridevops/internal/telemetry"
)

// This file is the single execution path of the catalogue: Run,
// RunParallel, the monitor scheduler and the CLIs all funnel through
// RunEngine, which builds on internal/engine for panic isolation, retry
// with backoff, per-attempt timeouts and run telemetry.

// RunOptions configures an engine-backed catalogue run.
type RunOptions struct {
	// Mode selects audit-only or audit-and-remediate.
	Mode RunMode
	// Workers bounds the worker pool; values <= 1 run sequentially (same
	// results, same order — parallelism never changes the report).
	Workers int
	// Checks is the per-check resilience policy. The zero value means one
	// attempt, no timeout: exactly the historical Run semantics plus panic
	// recovery. With MaxAttempts > 1, INCOMPLETE verdicts, panics and
	// timeouts are retried with exponential backoff; PASS and FAIL are
	// final and never retried. Enforcement is never retried (mutating a
	// host twice is not idempotent in general) but is panic-isolated: a
	// panicking Enforce yields FAILURE.
	Checks engine.Policy
	// Memo, when non-nil, dedups check executions across catalogue runs
	// sharing the memo: requirements that fingerprint their read state
	// (CheckFingerprint) execute once per distinct fingerprint and replay
	// the verdict elsewhere. Consulted only in CheckOnly mode —
	// enforcement mutates per-host state and is never deduped. The fleet
	// coordinator shares one memo across all hosts of one sweep.
	Memo *CheckMemo
	// Span, when non-nil, parents the run's trace: one "check" child per
	// requirement (tagged finding, status, and dedup_hit when replayed)
	// with the engine's per-attempt spans below, and an "enforce" span
	// around remediation. The fleet coordinator passes each host's span
	// here; nil — telemetry disabled — adds zero allocations.
	Span *telemetry.Span
	// Metrics, when non-nil, accumulates engine counters (engine.checks,
	// engine.attempts, engine.retries, engine.panics, engine.timeouts,
	// engine.errors, engine.dedup_hits/misses) and the engine.check_wall
	// duration histogram across runs sharing the registry.
	Metrics *telemetry.Metrics
	// Only, when non-nil, restricts the run to the catalogue entries whose
	// finding ID is in the set — the subset path of push-based incremental
	// evaluation, where a host-state delta maps through fleet.DepIndex to
	// the handful of affected checks. Unknown IDs are ignored; the report
	// keeps finding-ID order; an empty non-nil slice runs nothing. nil
	// (the default) runs the whole catalogue.
	Only []string
}

// ReqStats is the per-requirement telemetry of an engine run.
type ReqStats struct {
	FindingID string
	// Status is the requirement's final check status.
	Status CheckStatus
	// Attempts counts check executions (initial check plus the re-check
	// after enforcement, plus any retries of either).
	Attempts int
	// Retries is how many of those attempts were retries.
	Retries int
	// Panics counts recovered panics (check and enforce).
	Panics int
	// Timeouts counts attempts abandoned at the policy deadline.
	Timeouts int
	// Enforced reports whether remediation was attempted.
	Enforced bool
	// DedupHit marks a verdict replayed from the shared check memo; its
	// attempt counters are zero because nothing executed here.
	DedupHit bool
	// Duration is wall time spent on this requirement, backoffs included.
	Duration time.Duration
}

// RunStats aggregates the telemetry of one engine run.
type RunStats struct {
	Requirements int
	Workers      int
	// Wall is the elapsed time of the run; Busy the summed per-requirement
	// durations (Busy/Wall measures effective parallelism).
	Wall time.Duration
	Busy time.Duration
	// Attempts / Retries / Panics / Timeouts are summed over requirements.
	Attempts int
	Retries  int
	Panics   int
	Timeouts int
	// Errors counts requirements whose final status is ERROR.
	Errors int
	// DedupHits counts requirements whose verdict was replayed from the
	// shared check memo; DedupMisses counts memoisable requirements this
	// run executed as the fingerprint's first arrival. Both stay 0 when
	// RunOptions.Memo is nil.
	DedupHits   int
	DedupMisses int
	// PerRequirement holds the per-requirement rows in finding-ID order.
	PerRequirement []ReqStats
}

// Utilization is Busy / (Workers * Wall) in [0,1].
func (s RunStats) Utilization() float64 {
	return engine.PoolStats{Workers: s.Workers, Wall: s.Wall, Busy: s.Busy}.Utilization()
}

// Summary renders the aggregate telemetry as one line.
func (s RunStats) Summary() string {
	return fmt.Sprintf(
		"engine: %d requirements, %d workers, %d attempts (%d retries, %d panics recovered, %d timeouts), %d errors, wall %s ms, utilization %s",
		s.Requirements, s.Workers, s.Attempts, s.Retries, s.Panics, s.Timeouts,
		s.Errors, report.Millis(s.Wall), report.Percent(s.Utilization()))
}

// Table renders the per-requirement telemetry for cmd/vdo-bench and the
// CLIs' -telemetry flag.
func (s RunStats) Table(title string) *report.Table {
	t := report.New(title, "finding", "status", "attempts", "retries", "panics", "timeouts", "enforced", "ms")
	for _, r := range s.PerRequirement {
		t.AddRow(r.FindingID, r.Status, r.Attempts, r.Retries, r.Panics, r.Timeouts,
			r.Enforced, report.Millis(r.Duration))
	}
	t.Note = s.Summary()
	return t
}

// engineOutcome pairs a report row with its telemetry row. dedupMiss
// marks a memoisable requirement this run executed as the fingerprint's
// first arrival.
type engineOutcome struct {
	res       Result
	st        ReqStats
	dedupMiss bool
}

// runRequirement wraps one catalogue entry's resolution in its "check"
// span: opened before the memo consultation (so a dedup replay's memo
// wait is visible in the trace), tagged with the finding, the final
// status and — for replays — dedup_hit, and ended when the verdict is
// in. The span is threaded into the engine policy, so live executions
// hang their per-attempt spans below it.
func runRequirement(req CheckableEnforceableRequirement, mode RunMode, pol engine.Policy, memo *CheckMemo, parent *telemetry.Span) engineOutcome {
	sp := parent.Child("check").Tag("finding", req.FindingID())
	pol.Span = sp
	out := resolveRequirement(req, mode, pol, memo)
	sp.Tag("status", out.st.Status.String())
	// CheckError collapses several failure modes; surface which one as an
	// outcome tag so the trace store can filter check spans the same way
	// it filters attempt spans (outcome=timeout / outcome=panic).
	if out.st.Status == CheckError {
		switch {
		case out.st.Timeouts > 0:
			sp.Tag("outcome", "timeout")
		case out.st.Panics > 0:
			sp.Tag("outcome", "panic")
		default:
			sp.Tag("outcome", "error")
		}
	}
	if out.st.DedupHit {
		sp.TagBool("dedup_hit", true)
	}
	sp.End()
	return out
}

// resolveRequirement resolves one catalogue entry: through the shared
// check memo when the entry is dedupable and a memo is wired (CheckOnly
// runs only), through a live engine execution otherwise. The memo is
// single-flight, so the first arrival for a fingerprint executes while
// identical co-tenants wait and replay its verdict.
func resolveRequirement(req CheckableEnforceableRequirement, mode RunMode, pol engine.Policy, memo *CheckMemo) engineOutcome {
	if memo == nil || mode != CheckOnly {
		return runRequirementLive(req, mode, pol)
	}
	key, ok := CheckFingerprint(req)
	if !ok {
		return runRequirementLive(req, mode, pol)
	}
	if res, hit := memo.acquire(key); hit {
		return engineOutcome{res: res, st: ReqStats{
			FindingID: res.FindingID,
			Status:    res.After,
			DedupHit:  true,
		}}
	}
	out := runRequirementLive(req, mode, pol)
	memo.fulfill(key, out.res)
	out.dedupMiss = true
	return out
}

// runRequirementLive executes one catalogue entry under the policy. Every
// check goes through engine.AttemptCtx: panics and timeouts become ERROR,
// INCOMPLETE is retried while the policy allows, and checks implementing
// ContextChecker can observe an abandoned attempt's cancelled context at
// their probe boundaries.
func runRequirementLive(req CheckableEnforceableRequirement, mode RunMode, pol engine.Policy) engineOutcome {
	start := time.Now()
	var st ReqStats
	checkOp := func(ctx context.Context) CheckStatus {
		if cc, ok := req.(ContextChecker); ok {
			return cc.CheckCtx(ctx)
		}
		return req.Check()
	}
	check := func() CheckStatus {
		v, cst := engine.AttemptCtx(checkOp,
			func(s CheckStatus) bool { return s == CheckIncomplete },
			func(error) CheckStatus { return CheckError },
			pol)
		st.Attempts += cst.Attempts
		st.Retries += cst.Retries
		st.Panics += cst.Panics
		st.Timeouts += cst.Timeouts
		return v
	}
	res := Result{FindingID: req.FindingID(), Severity: req.Severity()}
	res.Before = check()
	res.After = res.Before
	if mode == CheckAndEnforce && res.Before != CheckPass {
		res.Enforced = true
		st.Enforced = true
		esp := pol.Span.Child("enforce")
		enf, est := engine.Attempt(req.Enforce, nil,
			func(error) EnforcementStatus { return EnforceFailure },
			engine.Policy{AttemptTimeout: pol.AttemptTimeout, Sleep: pol.Sleep, Span: esp})
		esp.Tag("result", enf.String()).End()
		st.Attempts += est.Attempts
		st.Panics += est.Panics
		st.Timeouts += est.Timeouts
		res.Enforcement = enf
		res.After = check()
	}
	st.FindingID = res.FindingID
	st.Status = res.After
	st.Duration = time.Since(start)
	return engineOutcome{res: res, st: st}
}

// RunEngine executes every catalogue entry in finding-ID order on the
// fault-tolerant engine and returns the report plus run telemetry. It is
// the single execution path behind Run and RunParallel. With
// RunOptions.Only set, only the named entries run (still in finding-ID
// order), which is how delta evaluation re-checks just the requirements
// affected by a host-state change.
func (c *Catalog) RunEngine(opts RunOptions) (Report, RunStats) {
	reqs := c.All()
	if opts.Only != nil {
		want := make(map[string]bool, len(opts.Only))
		for _, id := range opts.Only {
			want[id] = true
		}
		// All() returns a fresh sorted slice, so filtering in place keeps
		// finding-ID order and touches no shared state.
		kept := reqs[:0]
		for _, req := range reqs {
			if want[req.FindingID()] {
				kept = append(kept, req)
			}
		}
		reqs = kept
	}
	outs, ps := engine.Map(reqs, opts.Workers,
		func(i int, req CheckableEnforceableRequirement) engineOutcome {
			return runRequirement(req, opts.Mode, opts.Checks, opts.Memo, opts.Span)
		})
	stats := RunStats{
		Requirements: len(reqs),
		Workers:      ps.Workers,
		Wall:         ps.Wall,
		Busy:         ps.Busy,
	}
	var rep Report
	if len(outs) > 0 {
		rep.Results = make([]Result, len(outs))
		stats.PerRequirement = make([]ReqStats, len(outs))
	}
	for i, o := range outs {
		rep.Results[i] = o.res
		stats.PerRequirement[i] = o.st
		stats.Attempts += o.st.Attempts
		stats.Retries += o.st.Retries
		stats.Panics += o.st.Panics
		stats.Timeouts += o.st.Timeouts
		if o.res.After == CheckError {
			stats.Errors++
		}
		if o.st.DedupHit {
			stats.DedupHits++
		} else if o.dedupMiss {
			stats.DedupMisses++
		}
	}
	recordRunMetrics(opts.Metrics, stats)
	return rep, stats
}

// recordRunMetrics folds one run's telemetry into the shared metrics
// registry: the engine.* counters and the engine.check_wall histogram
// (executed checks only — dedup replays have no wall of their own).
func recordRunMetrics(m *telemetry.Metrics, stats RunStats) {
	if m == nil {
		return
	}
	m.Add("engine.checks", int64(stats.Requirements))
	m.Add("engine.attempts", int64(stats.Attempts))
	m.Add("engine.retries", int64(stats.Retries))
	m.Add("engine.panics", int64(stats.Panics))
	m.Add("engine.timeouts", int64(stats.Timeouts))
	m.Add("engine.errors", int64(stats.Errors))
	m.Add("engine.dedup_hits", int64(stats.DedupHits))
	m.Add("engine.dedup_misses", int64(stats.DedupMisses))
	for _, r := range stats.PerRequirement {
		if !r.DedupHit {
			m.Observe("engine.check_wall", r.Duration)
		}
	}
}
