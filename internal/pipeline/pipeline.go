// Package pipeline simulates the DevOps loop of the DATE 2021 VeriDevOps
// paper (its Figure 1): commits flow through build and a security
// verification gate ("Prevention at development", WP4) into operations,
// where runtime monitors ("Reactive Protection at operations", WP3) watch
// for violations. The simulator quantifies the paper's central qualitative
// claim — prevention catches specification violations early and cheaply,
// protection catches what only manifests at runtime, and only the
// combination catches everything — as the E6 experiment table.
package pipeline

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"veridevops/internal/trace"
)

// ViolationKind classifies how a security-requirement violation enters the
// system.
type ViolationKind int

const (
	// NoViolation marks a clean commit.
	NoViolation ViolationKind = iota
	// CodeViolation is introduced by a commit (a misconfiguration checked
	// in with the change) and is visible to the prevention gate.
	CodeViolation
	// DriftViolation arises in operations (manual change, environment
	// decay) and is invisible to any development-time gate.
	DriftViolation
)

func (k ViolationKind) String() string {
	switch k {
	case NoViolation:
		return "none"
	case CodeViolation:
		return "code"
	case DriftViolation:
		return "drift"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Phase is where a violation was caught.
type Phase int

const (
	// NotDetected means the violation survived the whole simulation.
	NotDetected Phase = iota
	// AtDev means the prevention gate caught it before deployment.
	AtDev
	// AtOps means a runtime monitor caught it in production.
	AtOps
	// AtAudit means only the end-of-horizon compliance audit found it.
	AtAudit
)

func (p Phase) String() string {
	switch p {
	case AtDev:
		return "dev"
	case AtOps:
		return "ops"
	case AtAudit:
		return "audit"
	default:
		return "undetected"
	}
}

// Config parameterises a simulation run.
type Config struct {
	// Prevention enables the development-time verification gate.
	Prevention bool
	// Protection enables the runtime monitors.
	Protection bool
	// GateRecall is the fraction of code violations the gate catches
	// (1.0: the deterministic RQCODE checks cover every encoded
	// requirement). Lower values model un-encoded requirements.
	GateRecall float64
	// GateLatency is the verification time added per commit when the gate
	// runs.
	GateLatency trace.Time
	// BuildLatency is commit-to-deploy time excluding the gate.
	BuildLatency trace.Time
	// MonitorPeriod is the runtime polling period.
	MonitorPeriod trace.Time
	// Interarrival is the time between commits.
	Interarrival trace.Time
	// PCode is the probability a commit carries a code violation; PDrift
	// the probability a drift violation appears during a commit interval.
	PCode, PDrift float64
}

// Validate reports why the configuration would make a simulation
// meaningless: non-positive periods (which used to crash Simulate with an
// integer divide-by-zero) and probabilities or recall outside [0,1]. A nil
// return means Simulate will use the configuration exactly as given.
func (c Config) Validate() error {
	var problems []string
	if c.Interarrival <= 0 {
		problems = append(problems, fmt.Sprintf("Interarrival must be positive, got %d", c.Interarrival))
	}
	if c.Protection && c.MonitorPeriod <= 0 {
		problems = append(problems, fmt.Sprintf("MonitorPeriod must be positive when Protection is on, got %d", c.MonitorPeriod))
	}
	if c.GateLatency < 0 {
		problems = append(problems, fmt.Sprintf("GateLatency must be non-negative, got %d", c.GateLatency))
	}
	if c.BuildLatency < 0 {
		problems = append(problems, fmt.Sprintf("BuildLatency must be non-negative, got %d", c.BuildLatency))
	}
	if c.GateRecall < 0 || c.GateRecall > 1 {
		problems = append(problems, fmt.Sprintf("GateRecall must be in [0,1], got %g", c.GateRecall))
	}
	if c.PCode < 0 || c.PCode > 1 {
		problems = append(problems, fmt.Sprintf("PCode must be in [0,1], got %g", c.PCode))
	}
	if c.PDrift < 0 || c.PDrift > 1 {
		problems = append(problems, fmt.Sprintf("PDrift must be in [0,1], got %g", c.PDrift))
	}
	if len(problems) == 0 {
		return nil
	}
	return errors.New("pipeline: invalid config: " + strings.Join(problems, "; "))
}

// normalized replaces invalid fields with the DefaultConfig values (and
// clamps probabilities into [0,1]) so Simulate never panics. Callers that
// want a hard error instead call Validate first.
func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.Interarrival <= 0 {
		c.Interarrival = d.Interarrival
	}
	if c.MonitorPeriod <= 0 {
		c.MonitorPeriod = d.MonitorPeriod
	}
	if c.GateLatency < 0 {
		c.GateLatency = 0
	}
	if c.BuildLatency < 0 {
		c.BuildLatency = 0
	}
	clamp01 := func(p float64) float64 {
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	c.GateRecall = clamp01(c.GateRecall)
	c.PCode = clamp01(c.PCode)
	c.PDrift = clamp01(c.PDrift)
	return c
}

// DefaultConfig returns the baseline configuration of the E6 experiment.
func DefaultConfig() Config {
	return Config{
		Prevention:    true,
		Protection:    true,
		GateRecall:    1.0,
		GateLatency:   5,
		BuildLatency:  20,
		MonitorPeriod: 60,
		Interarrival:  100,
		PCode:         0.15,
		PDrift:        0.05,
	}
}

// Violation is one injected violation and its fate.
type Violation struct {
	Kind ViolationKind
	// IntroducedAt is when the violation entered the system (commit time
	// for code, occurrence time for drift).
	IntroducedAt trace.Time
	// ActiveAt is when it became observable in production (deploy time
	// for code violations that pass the gate; occurrence time for drift).
	ActiveAt   trace.Time
	DetectedAt trace.Time // -1 when undetected before the audit
	Phase      Phase
}

// Latency returns detection latency from introduction; -1 if undetected.
func (v Violation) Latency() trace.Time {
	if v.Phase == NotDetected {
		return -1
	}
	return v.DetectedAt - v.IntroducedAt
}

// Result aggregates a simulation run.
type Result struct {
	Config     Config
	Commits    int
	Horizon    trace.Time
	Violations []Violation
	// GateCost is the total verification time spent by the gate.
	GateCost trace.Time
}

// Counts returns how many violations were caught per phase.
func (r Result) Counts() (dev, ops, audit, escaped int) {
	for _, v := range r.Violations {
		switch v.Phase {
		case AtDev:
			dev++
		case AtOps:
			ops++
		case AtAudit:
			audit++
		default:
			escaped++
		}
	}
	return
}

// MeanLatency returns the mean detection latency for violations of the
// kind (over detected ones, including audit detections); -1 if none.
func (r Result) MeanLatency(kind ViolationKind) float64 {
	total, n := 0.0, 0
	for _, v := range r.Violations {
		if v.Kind != kind || v.Phase == NotDetected {
			continue
		}
		total += float64(v.Latency())
		n++
	}
	if n == 0 {
		return -1
	}
	return total / float64(n)
}

// EscapeRate is the fraction of violations that reached production
// undetected by the runtime monitors (caught only by audit or never).
func (r Result) EscapeRate() float64 {
	if len(r.Violations) == 0 {
		return 0
	}
	_, _, audit, escaped := r.Counts()
	return float64(audit+escaped) / float64(len(r.Violations))
}

// String renders the experiment row.
func (r Result) String() string {
	dev, ops, audit, esc := r.Counts()
	var b strings.Builder
	fmt.Fprintf(&b, "prevention=%v protection=%v: %d violations | dev=%d ops=%d audit=%d escaped=%d | ",
		r.Config.Prevention, r.Config.Protection, len(r.Violations), dev, ops, audit, esc)
	fmt.Fprintf(&b, "ttd(code)=%.1f ttd(drift)=%.1f gate-cost=%d",
		r.MeanLatency(CodeViolation), r.MeanLatency(DriftViolation), r.GateCost)
	return b.String()
}

// Simulate runs nCommits commits through the pipeline. Deterministic in
// rng. Invalid configurations are normalised (see Config.Validate and
// normalized) rather than panicking; Result.Config records the
// configuration actually simulated.
func Simulate(cfg Config, nCommits int, rng *rand.Rand) Result {
	cfg = cfg.normalized()
	res := Result{Config: cfg, Commits: nCommits}
	horizon := trace.Time(nCommits+1) * cfg.Interarrival
	res.Horizon = horizon

	nextPoll := func(t trace.Time) trace.Time {
		// First monitor poll at or after t.
		k := (t + cfg.MonitorPeriod - 1) / cfg.MonitorPeriod
		return k * cfg.MonitorPeriod
	}

	// detect resolves runtime detection of a violation active at `active`:
	// the first monitor poll, unless that poll falls past the simulation
	// horizon — no monitor runs after the horizon, so the end-of-horizon
	// audit catches it instead.
	detect := func(active trace.Time) (Phase, trace.Time) {
		if !cfg.Protection {
			return AtAudit, horizon
		}
		if p := nextPoll(active); p <= horizon {
			return AtOps, p
		}
		return AtAudit, horizon
	}

	for i := 0; i < nCommits; i++ {
		at := trace.Time(i+1) * cfg.Interarrival

		// Gate cost applies to every commit when prevention is on.
		if cfg.Prevention {
			res.GateCost += cfg.GateLatency
		}

		// Code violation carried by the commit.
		if rng.Float64() < cfg.PCode {
			v := Violation{Kind: CodeViolation, IntroducedAt: at, DetectedAt: -1}
			caughtAtGate := cfg.Prevention && rng.Float64() < cfg.GateRecall
			if caughtAtGate {
				v.Phase = AtDev
				v.DetectedAt = at + cfg.GateLatency
				v.ActiveAt = -1
			} else {
				deploy := at + cfg.BuildLatency
				if cfg.Prevention {
					deploy += cfg.GateLatency
				}
				v.ActiveAt = deploy
				v.Phase, v.DetectedAt = detect(deploy)
			}
			res.Violations = append(res.Violations, v)
		}

		// Drift violation during this commit interval.
		if rng.Float64() < cfg.PDrift {
			occur := at + trace.Time(rng.Int63n(int64(cfg.Interarrival)))
			v := Violation{Kind: DriftViolation, IntroducedAt: occur, ActiveAt: occur, DetectedAt: -1}
			v.Phase, v.DetectedAt = detect(occur)
			res.Violations = append(res.Violations, v)
		}
	}
	return res
}
