package pipeline

import "math"

// Economic model: the DATE paper's pitch is that automated prevention pays
// for itself because production incidents cost more per unit of exposure
// time than verification gates cost per commit. CostModel quantifies that
// trade and locates the break-even incident cost.

// CostModel prices a simulation run.
type CostModel struct {
	// GateCostPerTick prices verification time (the gate's latency is
	// already accumulated in Result.GateCost, expressed in ticks).
	GateCostPerTick float64
	// ExposureCostPerTick prices each tick a violation is active in
	// production before detection.
	ExposureCostPerTick float64
	// IncidentFixedCost is charged per violation that reached production.
	IncidentFixedCost float64
}

// TotalCost prices the run: gate time plus production exposure plus fixed
// incident handling.
func (cm CostModel) TotalCost(r Result) float64 {
	total := cm.GateCostPerTick * float64(r.GateCost)
	for _, v := range r.Violations {
		if v.ActiveAt < 0 || v.Phase == AtDev {
			continue // never reached production
		}
		end := v.DetectedAt
		if v.Phase == NotDetected {
			end = r.Horizon
		}
		if end > v.ActiveAt {
			total += cm.ExposureCostPerTick * float64(end-v.ActiveAt)
		}
		total += cm.IncidentFixedCost
	}
	return total
}

// BreakEvenExposureCost returns the production exposure cost per tick at
// which enabling prevention becomes worthwhile, holding the other prices
// fixed: the exposure price where TotalCost(with prevention) equals
// TotalCost(without). Returns +Inf when prevention never pays (no exposure
// is avoided) and 0 when it pays even for free incidents.
func BreakEvenExposureCost(with, without Result, gateCostPerTick, incidentFixedCost float64) float64 {
	base := CostModel{GateCostPerTick: gateCostPerTick, IncidentFixedCost: incidentFixedCost}
	exposure := func(r Result) (ticks float64, incidents int) {
		for _, v := range r.Violations {
			if v.ActiveAt < 0 || v.Phase == AtDev {
				continue
			}
			end := v.DetectedAt
			if v.Phase == NotDetected {
				end = r.Horizon
			}
			if end > v.ActiveAt {
				ticks += float64(end - v.ActiveAt)
			}
			incidents++
		}
		return
	}
	expWith, incWith := exposure(with)
	expWithout, incWithout := exposure(without)
	deltaExposure := expWithout - expWith
	deltaFixed := base.GateCostPerTick*float64(with.GateCost-without.GateCost) -
		incidentFixedCost*float64(incWithout-incWith)
	if deltaExposure <= 0 {
		if deltaFixed <= 0 {
			return 0 // prevention is free or better regardless of exposure price
		}
		return math.Inf(1)
	}
	be := deltaFixed / deltaExposure
	if be < 0 {
		return 0
	}
	return be
}
