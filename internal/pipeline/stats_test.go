package pipeline

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Errorf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stdev-want) > 1e-9 {
		t.Errorf("Stdev = %v, want %v", s.Stdev, want)
	}
	if !strings.Contains(s.String(), "2.5±") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s := summarize([]float64{7}); s.Stdev != 0 || s.Mean != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestReplicateShapeStableAcrossSeeds(t *testing.T) {
	both := Replicate(DefaultConfig(), 2000, 5, 1)
	protOnly := DefaultConfig()
	protOnly.Prevention = false
	prot := Replicate(protOnly, 2000, 5, 1)

	// The headline shape holds in the mean across seeds, beyond the noise
	// band: prevention cuts code TTD.
	if both.TTDCode.Mean+both.TTDCode.Stdev >= prot.TTDCode.Mean-prot.TTDCode.Stdev {
		t.Errorf("prevention TTD %v should be well below protection-only %v",
			both.TTDCode, prot.TTDCode)
	}
	// Escape rate is identically zero with protection on.
	if both.EscapeRate.Max != 0 || prot.EscapeRate.Max != 0 {
		t.Errorf("escape rates: %v / %v", both.EscapeRate, prot.EscapeRate)
	}
	if both.Seeds != 5 || both.Violations.N != 5 {
		t.Errorf("replication bookkeeping: %+v", both)
	}
}
