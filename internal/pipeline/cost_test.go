package pipeline

import (
	"math"
	"math/rand"
	"testing"
)

func TestTotalCostComponents(t *testing.T) {
	r := Result{
		GateCost: 100,
		Horizon:  1000,
		Violations: []Violation{
			{Kind: CodeViolation, Phase: AtDev, ActiveAt: -1, IntroducedAt: 10, DetectedAt: 15},
			{Kind: DriftViolation, Phase: AtOps, ActiveAt: 200, IntroducedAt: 200, DetectedAt: 260},
			{Kind: DriftViolation, Phase: NotDetected, ActiveAt: 900, IntroducedAt: 900, DetectedAt: -1},
		},
	}
	cm := CostModel{GateCostPerTick: 2, ExposureCostPerTick: 1, IncidentFixedCost: 10}
	// gate: 100*2 = 200; ops exposure 60*1 + 10; undetected exposure
	// (1000-900)*1 + 10; dev violation costs nothing beyond the gate.
	want := 200.0 + 60 + 10 + 100 + 10
	if got := cm.TotalCost(r); got != want {
		t.Errorf("TotalCost = %v, want %v", got, want)
	}
}

func TestPreventionPaysWhenExposureIsExpensive(t *testing.T) {
	with := run(true, true, 11)
	without := run(false, true, 11)
	cheap := CostModel{GateCostPerTick: 1, ExposureCostPerTick: 0, IncidentFixedCost: 0}
	costly := CostModel{GateCostPerTick: 1, ExposureCostPerTick: 100, IncidentFixedCost: 50}
	// With free incidents, the gate is pure cost.
	if cheap.TotalCost(with) <= cheap.TotalCost(without) {
		t.Error("with zero exposure cost, prevention should cost more")
	}
	// With expensive exposure, prevention wins.
	if costly.TotalCost(with) >= costly.TotalCost(without) {
		t.Errorf("with expensive exposure, prevention should win: %v vs %v",
			costly.TotalCost(with), costly.TotalCost(without))
	}
}

func TestBreakEvenExposureCost(t *testing.T) {
	with := run(true, true, 12)
	without := run(false, true, 12)
	be := BreakEvenExposureCost(with, without, 1, 0)
	if math.IsInf(be, 1) || be <= 0 {
		t.Fatalf("break-even = %v, want a positive finite price", be)
	}
	// At the break-even price the two configurations cost the same (up to
	// float noise).
	cm := func(p float64) CostModel {
		return CostModel{GateCostPerTick: 1, ExposureCostPerTick: p}
	}
	cw, cwo := cm(be).TotalCost(with), cm(be).TotalCost(without)
	if math.Abs(cw-cwo) > 1e-6*math.Max(cw, cwo) {
		t.Errorf("costs differ at break-even: %v vs %v", cw, cwo)
	}
	// Above break-even prevention is cheaper; below it is dearer.
	if cm(be*2).TotalCost(with) >= cm(be*2).TotalCost(without) {
		t.Error("above break-even prevention must win")
	}
	if cm(be/2).TotalCost(with) <= cm(be/2).TotalCost(without) {
		t.Error("below break-even prevention must lose")
	}
}

func TestBreakEvenDegenerate(t *testing.T) {
	r := Simulate(DefaultConfig(), 100, rand.New(rand.NewSource(13)))
	// Same run on both sides: no exposure is avoided, no extra gate cost
	// => prevention is cost-neutral, break-even collapses to zero.
	if be := BreakEvenExposureCost(r, r, 1, 0); be != 0 {
		t.Errorf("identical runs: break-even = %v, want 0", be)
	}
	// Same exposure but extra gate cost on the "with" side => never pays.
	more := r
	more.GateCost = r.GateCost + 1000
	if be := BreakEvenExposureCost(more, r, 1, 0); !math.IsInf(be, 1) {
		t.Errorf("pure extra cost: break-even = %v, want +Inf", be)
	}
}
