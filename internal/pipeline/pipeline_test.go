package pipeline

import (
	"math/rand"
	"strings"
	"testing"
)

func run(prev, prot bool, seed int64) Result {
	cfg := DefaultConfig()
	cfg.Prevention = prev
	cfg.Protection = prot
	return Simulate(cfg, 2000, rand.New(rand.NewSource(seed)))
}

func TestSimulateDeterministic(t *testing.T) {
	a := run(true, true, 1)
	b := run(true, true, 1)
	if len(a.Violations) != len(b.Violations) || a.GateCost != b.GateCost {
		t.Fatal("simulation must be deterministic in the seed")
	}
}

func TestBothHalvesCatchEverything(t *testing.T) {
	r := run(true, true, 2)
	_, _, audit, escaped := r.Counts()
	if audit != 0 || escaped != 0 {
		t.Errorf("prevention+protection must catch everything before audit: audit=%d escaped=%d", audit, escaped)
	}
	if r.EscapeRate() != 0 {
		t.Errorf("EscapeRate = %v, want 0", r.EscapeRate())
	}
}

func TestPreventionCatchesCodeAtDev(t *testing.T) {
	r := run(true, true, 3)
	dev, ops, _, _ := r.Counts()
	if dev == 0 {
		t.Fatal("code violations should be caught at dev")
	}
	// With perfect gate recall, everything caught at ops must be drift.
	for _, v := range r.Violations {
		if v.Phase == AtOps && v.Kind == CodeViolation {
			t.Errorf("code violation leaked past a perfect gate: %+v", v)
		}
		if v.Phase == AtDev && v.Kind == DriftViolation {
			t.Errorf("drift cannot be caught at dev: %+v", v)
		}
	}
	_ = ops
}

func TestProtectionOnlyCatchesEverythingButLater(t *testing.T) {
	both := run(true, true, 4)
	protOnly := run(false, true, 4)

	_, _, audit, escaped := protOnly.Counts()
	if audit != 0 || escaped != 0 {
		t.Error("protection alone still catches everything eventually")
	}
	// Same seed, same violation stream: code detection is slower without
	// the gate.
	if protOnly.MeanLatency(CodeViolation) <= both.MeanLatency(CodeViolation) {
		t.Errorf("protection-only ttd(code)=%v should exceed both=%v",
			protOnly.MeanLatency(CodeViolation), both.MeanLatency(CodeViolation))
	}
	if protOnly.GateCost != 0 {
		t.Error("no gate cost without prevention")
	}
}

func TestPreventionOnlyMissesDrift(t *testing.T) {
	r := run(true, false, 5)
	drift := 0
	for _, v := range r.Violations {
		if v.Kind == DriftViolation {
			drift++
			if v.Phase != AtAudit {
				t.Errorf("drift must only be found at audit without protection: %+v", v)
			}
		}
	}
	if drift == 0 {
		t.Fatal("seed produced no drift violations; pick another seed")
	}
	if r.EscapeRate() == 0 {
		t.Error("prevention-only must have a non-zero escape rate")
	}
}

func TestNeitherHalfLeavesAllToAudit(t *testing.T) {
	r := run(false, false, 6)
	dev, ops, audit, escaped := r.Counts()
	if dev != 0 || ops != 0 {
		t.Errorf("nothing can be caught early: dev=%d ops=%d", dev, ops)
	}
	if audit != len(r.Violations) || escaped != 0 {
		t.Errorf("all violations surface at audit: audit=%d total=%d", audit, len(r.Violations))
	}
}

func TestGateRecallAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GateRecall = 0.5
	r := Simulate(cfg, 3000, rand.New(rand.NewSource(7)))
	leaked := 0
	for _, v := range r.Violations {
		if v.Kind == CodeViolation && v.Phase == AtOps {
			leaked++
		}
	}
	if leaked == 0 {
		t.Error("an imperfect gate must leak some code violations to ops")
	}
}

func TestMonitorPeriodAffectsDriftLatency(t *testing.T) {
	fast := DefaultConfig()
	fast.MonitorPeriod = 10
	slow := DefaultConfig()
	slow.MonitorPeriod = 500
	a := Simulate(fast, 2000, rand.New(rand.NewSource(8)))
	b := Simulate(slow, 2000, rand.New(rand.NewSource(8)))
	if a.MeanLatency(DriftViolation) >= b.MeanLatency(DriftViolation) {
		t.Errorf("faster polling must reduce drift latency: %v vs %v",
			a.MeanLatency(DriftViolation), b.MeanLatency(DriftViolation))
	}
}

func TestMeanLatencyNoKind(t *testing.T) {
	r := Result{}
	if r.MeanLatency(CodeViolation) != -1 {
		t.Error("no violations: latency must be -1")
	}
	if r.EscapeRate() != 0 {
		t.Error("no violations: escape rate 0")
	}
}

func TestViolationLatency(t *testing.T) {
	v := Violation{IntroducedAt: 10, DetectedAt: 35, Phase: AtOps}
	if v.Latency() != 25 {
		t.Errorf("Latency = %d", v.Latency())
	}
	und := Violation{Phase: NotDetected}
	if und.Latency() != -1 {
		t.Error("undetected latency must be -1")
	}
}

func TestStringsRender(t *testing.T) {
	r := run(true, true, 9)
	s := r.String()
	for _, want := range []string{"prevention=true", "dev=", "ttd(code)="} {
		if !strings.Contains(s, want) {
			t.Errorf("result string missing %q: %s", want, s)
		}
	}
	if CodeViolation.String() != "code" || DriftViolation.String() != "drift" || NoViolation.String() != "none" {
		t.Error("kind names wrong")
	}
	if AtDev.String() != "dev" || AtOps.String() != "ops" || AtAudit.String() != "audit" || NotDetected.String() != "undetected" {
		t.Error("phase names wrong")
	}
}

func TestHorizonClampsLateDetections(t *testing.T) {
	// Regression: with a monitor period so long that the first poll after a
	// violation falls past the horizon, the old code still reported AtOps
	// with DetectedAt = nextPoll > horizon — a detection by a poll that
	// never runs. Those violations must fall to the end-of-horizon audit.
	cfg := DefaultConfig()
	cfg.Prevention = false
	cfg.MonitorPeriod = 7000 // horizon = 51*100 = 5100 < first poll
	r := Simulate(cfg, 50, rand.New(rand.NewSource(11)))
	if len(r.Violations) == 0 {
		t.Fatal("seed produced no violations; pick another seed")
	}
	for _, v := range r.Violations {
		if v.DetectedAt > r.Horizon {
			t.Errorf("detection past the horizon: %+v (horizon %d)", v, r.Horizon)
		}
		if v.Phase != AtAudit || v.DetectedAt != r.Horizon {
			t.Errorf("no poll fits before the horizon, want audit at %d: %+v", r.Horizon, v)
		}
	}
}

func TestHorizonClampOnlyAffectsTail(t *testing.T) {
	// With a period that doesn't divide the horizon, only violations whose
	// next poll overshoots may be clamped; everything else stays AtOps.
	cfg := DefaultConfig()
	cfg.Prevention = false
	cfg.MonitorPeriod = 73
	r := Simulate(cfg, 500, rand.New(rand.NewSource(12)))
	nextPoll := func(tt int64) int64 {
		k := (tt + 73 - 1) / 73
		return k * 73
	}
	ops := 0
	for _, v := range r.Violations {
		switch v.Phase {
		case AtOps:
			ops++
			if v.DetectedAt > r.Horizon {
				t.Errorf("ops detection past horizon: %+v", v)
			}
		case AtAudit:
			if nextPoll(int64(v.ActiveAt)) <= int64(r.Horizon) {
				t.Errorf("clamped to audit although a poll fit: %+v", v)
			}
			if v.DetectedAt != r.Horizon {
				t.Errorf("audit detection must be at the horizon: %+v", v)
			}
		}
	}
	if ops == 0 {
		t.Error("expected most violations still caught at ops")
	}
}

func TestSimulateSurvivesNonPositivePeriods(t *testing.T) {
	// Regression: MonitorPeriod <= 0 crashed nextPoll with an integer
	// divide-by-zero, and Interarrival <= 0 crashed rng.Int63n.
	cfg := Config{Protection: true} // both periods zero
	r := Simulate(cfg, 20, rand.New(rand.NewSource(13)))
	d := DefaultConfig()
	if r.Config.Interarrival != d.Interarrival || r.Config.MonitorPeriod != d.MonitorPeriod {
		t.Errorf("invalid periods must normalise to defaults, got %+v", r.Config)
	}
	neg := DefaultConfig()
	neg.Interarrival = -5
	neg.MonitorPeriod = -1
	neg.PCode = 3 // clamps to 1: every commit violates, still no panic
	r = Simulate(neg, 20, rand.New(rand.NewSource(13)))
	if len(r.Violations) < 20 {
		t.Errorf("PCode clamped to 1 must violate every commit, got %d", len(r.Violations))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config must validate, got %v", err)
	}
	bad := Config{Protection: true}
	err := bad.Validate()
	if err == nil {
		t.Fatal("zero periods must not validate")
	}
	for _, want := range []string{"Interarrival", "MonitorPeriod"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	// MonitorPeriod only matters when Protection is on.
	off := DefaultConfig()
	off.Protection = false
	off.MonitorPeriod = 0
	if err := off.Validate(); err != nil {
		t.Errorf("MonitorPeriod unused without protection, got %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.GateRecall = 1.5 },
		func(c *Config) { c.PCode = -0.1 },
		func(c *Config) { c.PDrift = 2 },
		func(c *Config) { c.GateLatency = -1 },
		func(c *Config) { c.BuildLatency = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d must not validate: %+v", i, c)
		}
	}
}

func TestGateCostScalesWithCommits(t *testing.T) {
	cfg := DefaultConfig()
	r := Simulate(cfg, 100, rand.New(rand.NewSource(10)))
	if r.GateCost != 100*cfg.GateLatency {
		t.Errorf("GateCost = %d, want %d", r.GateCost, 100*cfg.GateLatency)
	}
}
