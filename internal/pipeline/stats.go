package pipeline

import (
	"fmt"
	"math"
	"math/rand"
)

// Multi-seed replication: the E6 table reports one seed; ReplicatedStats
// quantifies run-to-run variance so EXPERIMENTS.md can state the shape
// claims with dispersion, not just point estimates.

// Sample is a mean/stdev summary of one scalar across replications.
type Sample struct {
	Mean, Stdev, Min, Max float64
	N                     int
}

func summarize(xs []float64) Sample {
	s := Sample{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Stdev += d * d
	}
	if len(xs) > 1 {
		s.Stdev = math.Sqrt(s.Stdev / float64(len(xs)-1))
	} else {
		s.Stdev = 0
	}
	return s
}

// String renders "mean±stdev".
func (s Sample) String() string {
	return fmt.Sprintf("%.1f±%.1f", s.Mean, s.Stdev)
}

// ReplicatedStats aggregates simulations across seeds.
type ReplicatedStats struct {
	Config     Config
	Seeds      int
	TTDCode    Sample
	TTDDrift   Sample
	EscapeRate Sample
	Violations Sample
}

// Replicate runs the simulation across `seeds` seeds (base..base+seeds-1).
func Replicate(cfg Config, nCommits, seeds int, base int64) ReplicatedStats {
	var ttdCode, ttdDrift, escape, viol []float64
	for s := 0; s < seeds; s++ {
		r := Simulate(cfg, nCommits, rand.New(rand.NewSource(base+int64(s))))
		if v := r.MeanLatency(CodeViolation); v >= 0 {
			ttdCode = append(ttdCode, v)
		}
		if v := r.MeanLatency(DriftViolation); v >= 0 {
			ttdDrift = append(ttdDrift, v)
		}
		escape = append(escape, r.EscapeRate())
		viol = append(viol, float64(len(r.Violations)))
	}
	return ReplicatedStats{
		Config:     cfg,
		Seeds:      seeds,
		TTDCode:    summarize(ttdCode),
		TTDDrift:   summarize(ttdDrift),
		EscapeRate: summarize(escape),
		Violations: summarize(viol),
	}
}
