package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := New()
	tr.SetBool("p", 10, true)
	tr.SetBool("p", 20, false)
	tr.SetNum("x", 5, 3.25)
	tr.SetEnd(100)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.End() != 100 {
		t.Errorf("End = %d", got.End())
	}
	if !got.BoolAt("p", 15) || got.BoolAt("p", 25) {
		t.Error("boolean signal did not round-trip")
	}
	if got.NumAt("x", 6) != 3.25 {
		t.Errorf("x = %v", got.NumAt("x", 6))
	}
}

func TestJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New()
	GenRandomToggles(tr, "a", 15, 1000, rng)
	GenNumericWalk(tr, "w", 0, 50, 7, rng)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range tr.ChangePoints() {
		if tr.BoolAt("a", cp) != got.BoolAt("a", cp) {
			t.Fatalf("a differs at %d", cp)
		}
		if tr.NumAt("w", cp) != got.NumAt("w", cp) {
			t.Fatalf("w differs at %d", cp)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("malformed json must error")
	}
}
