package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV encodes the trace as CSV rows "signal,time,value" ordered by
// signal name then timestamp. Boolean signals serialize their numeric
// projection (0/1), so the encoding round-trips through ReadCSV.
func WriteCSV(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"signal", "time", "value"}); err != nil {
		return err
	}
	for _, name := range tr.Names() {
		for _, smp := range tr.Signal(name).Samples() {
			rec := []string{
				name,
				strconv.FormatInt(smp.At, 10),
				strconv.FormatFloat(smp.Num, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV decodes a trace written by WriteCSV (or any CSV in the same
// "signal,time,value" layout; a header row is optional).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	tr := New()
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv read: %w", err)
		}
		line++
		// A first row starting "signal" is only a header when its time
		// and value fields are not numbers: a signal literally named
		// "signal" must round-trip as data, not vanish as a header.
		if line == 1 && rec[0] == "signal" && !numericSample(rec) {
			continue // header
		}
		t, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q: %w", line, rec[1], err)
		}
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad value %q: %w", line, rec[2], err)
		}
		tr.SetNum(rec[0], t, v)
	}
}

// numericSample reports whether a CSV row's time and value fields both
// parse as numbers — i.e. the row is a sample, not a header.
func numericSample(rec []string) bool {
	if _, err := strconv.ParseInt(rec[1], 10, 64); err != nil {
		return false
	}
	_, err := strconv.ParseFloat(rec[2], 64)
	return err == nil
}
