package trace

import (
	"math/rand"
	"sort"
)

// Generators produce synthetic traces for the benchmark harness. All
// generators are deterministic in their seed so experiment tables are
// reproducible.

// GenPeriodic produces a boolean signal that is true for dutyTicks at the
// start of every periodTicks window, from time 0 to end.
func GenPeriodic(tr *Trace, name string, period, duty, end Time) {
	if period <= 0 {
		panic("trace: period must be positive")
	}
	for t := Time(0); t <= end; t += period {
		tr.SetBool(name, t, true)
		if duty < period {
			tr.SetBool(name, t+duty, false)
		}
	}
	tr.SetEnd(end)
}

// GenPulse sets a single true pulse [at, at+width) on the named signal.
func GenPulse(tr *Trace, name string, at, width Time) {
	tr.SetBool(name, at, true)
	tr.SetBool(name, at+width, false)
}

// GenRandomToggles flips the named boolean signal n times at strictly
// increasing random instants in (0, end], starting from false at time 0.
func GenRandomToggles(tr *Trace, name string, n int, end Time, rng *rand.Rand) {
	tr.SetBool(name, 0, false)
	if n <= 0 {
		tr.SetEnd(end)
		return
	}
	times := make(map[Time]struct{}, n)
	for len(times) < n {
		t := Time(rng.Int63n(int64(end))) + 1
		times[t] = struct{}{}
	}
	val := false
	// Collect and sort via ChangePoints-like approach: emit in time order.
	ordered := make([]Time, 0, n)
	for t := range times {
		ordered = append(ordered, t)
	}
	sortTimes(ordered)
	for _, t := range ordered {
		val = !val
		tr.SetBool(name, t, val)
	}
	tr.SetEnd(end)
}

// GenResponsePairs emits n (p, q) request/response pulses: p rises at a
// random time, q rises between minLat and maxLat ticks later. It returns
// the maximum observed latency, useful as ground truth for timed-response
// pattern tests.
func GenResponsePairs(tr *Trace, p, q string, n int, gap, minLat, maxLat Time, rng *rand.Rand) Time {
	t := Time(0)
	var maxObs Time
	tr.SetBool(p, 0, false)
	tr.SetBool(q, 0, false)
	for i := 0; i < n; i++ {
		t += gap + Time(rng.Int63n(int64(gap)))
		lat := minLat
		if maxLat > minLat {
			lat += Time(rng.Int63n(int64(maxLat - minLat)))
		}
		GenPulse(tr, p, t, 1)
		GenPulse(tr, q, t+lat, 1)
		if lat > maxObs {
			maxObs = lat
		}
		t += lat
	}
	tr.SetEnd(t + gap)
	return maxObs
}

// GenNumericWalk produces a numeric random walk sampled every step ticks.
func GenNumericWalk(tr *Trace, name string, start float64, steps int, step Time, rng *rand.Rand) {
	v := start
	for i := 0; i < steps; i++ {
		t := Time(i) * step
		tr.SetNum(name, t, v)
		v += rng.Float64()*2 - 1
	}
	tr.SetEnd(Time(steps) * step)
}

func sortTimes(ts []Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}
