package trace

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSignalStepSemantics(t *testing.T) {
	s := NewSignal("p")
	s.SetBool(10, true)
	s.SetBool(20, false)

	if s.BoolAt(0) {
		t.Error("signal should be false before the first sample")
	}
	if !s.BoolAt(10) {
		t.Error("signal should be true exactly at the rising sample")
	}
	if !s.BoolAt(15) {
		t.Error("signal should hold true between samples")
	}
	if s.BoolAt(20) || s.BoolAt(1000) {
		t.Error("signal should be false at and after the falling sample")
	}
}

func TestSignalOverwriteAtSameTimestamp(t *testing.T) {
	s := NewSignal("p")
	s.SetNum(5, 1)
	s.SetNum(5, 42)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after overwrite", s.Len())
	}
	if got := s.NumAt(5); got != 42 {
		t.Errorf("NumAt(5) = %v, want 42", got)
	}
}

func TestSignalOutOfOrderInsertion(t *testing.T) {
	s := NewSignal("p")
	s.SetNum(30, 3)
	s.SetNum(10, 1)
	s.SetNum(20, 2)
	want := []float64{1, 2, 3}
	for i, smp := range s.Samples() {
		if smp.Num != want[i] {
			t.Fatalf("samples out of order: %v", s.Samples())
		}
	}
	if s.NumAt(25) != 2 {
		t.Errorf("NumAt(25) = %v, want 2", s.NumAt(25))
	}
}

// Property: regardless of insertion order, samples end up sorted and value
// lookup matches a reference linear scan.
func TestSignalSortedInvariant(t *testing.T) {
	f := func(times []int16, probe int16) bool {
		s := NewSignal("x")
		ref := map[int64]float64{}
		for i, tt := range times {
			at := int64(tt)
			s.SetNum(at, float64(i))
			ref[at] = float64(i)
		}
		// Sorted invariant.
		smps := s.Samples()
		if !sort.SliceIsSorted(smps, func(i, j int) bool { return smps[i].At < smps[j].At }) {
			return false
		}
		// Reference lookup: latest ref sample at or before probe.
		var best int64
		var bestVal float64
		found := false
		for at, v := range ref {
			if at <= int64(probe) && (!found || at >= best) {
				best, bestVal, found = at, v, true
			}
		}
		got := s.NumAt(int64(probe))
		if !found {
			return got == 0
		}
		return got == bestVal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTraceEndTracking(t *testing.T) {
	tr := New()
	tr.SetBool("p", 5, true)
	tr.SetNum("q", 17, 3.5)
	if tr.End() != 17 {
		t.Errorf("End = %d, want 17", tr.End())
	}
	tr.SetEnd(100)
	if tr.End() != 100 {
		t.Errorf("End = %d, want 100 after SetEnd", tr.End())
	}
	tr.SetEnd(50) // must not shrink
	if tr.End() != 100 {
		t.Errorf("End = %d, want 100 (SetEnd must not shrink)", tr.End())
	}
}

func TestTraceMissingSignal(t *testing.T) {
	tr := New()
	if tr.BoolAt("ghost", 10) {
		t.Error("missing signal should be false")
	}
	if tr.NumAt("ghost", 10) != 0 {
		t.Error("missing signal should be zero")
	}
	if tr.Has("ghost") {
		t.Error("Has should be false for missing signal")
	}
}

func TestChangePoints(t *testing.T) {
	tr := New()
	tr.SetBool("p", 10, true)
	tr.SetBool("q", 10, true) // duplicate timestamp across signals
	tr.SetBool("p", 30, false)
	tr.SetEnd(40)
	got := tr.ChangePoints()
	want := []int64{0, 10, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("ChangePoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChangePoints = %v, want %v", got, want)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	tr := New()
	tr.SetBool("zeta", 0, true)
	tr.SetBool("alpha", 0, true)
	names := tr.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestGenPeriodic(t *testing.T) {
	tr := New()
	GenPeriodic(tr, "clk", 10, 3, 100)
	for _, c := range []struct {
		at   int64
		want bool
	}{{0, true}, {2, true}, {3, false}, {9, false}, {10, true}, {13, false}} {
		if got := tr.BoolAt("clk", c.at); got != c.want {
			t.Errorf("clk at %d = %v, want %v", c.at, got, c.want)
		}
	}
	if tr.End() < 100 {
		t.Error("end not extended")
	}
}

func TestGenPeriodicPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GenPeriodic should panic on non-positive period")
		}
	}()
	GenPeriodic(New(), "clk", 0, 1, 10)
}

func TestGenRandomTogglesAlternates(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	GenRandomToggles(tr, "p", 7, 1000, rng)
	s := tr.Signal("p")
	if s.Len() != 8 { // initial false + 7 toggles
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	prev := s.Samples()[0].Bool
	if prev {
		t.Fatal("signal must start false")
	}
	for _, smp := range s.Samples()[1:] {
		if smp.Bool == prev {
			t.Fatal("toggles must alternate")
		}
		prev = smp.Bool
	}
}

func TestGenResponsePairsLatencyBound(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	maxObs := GenResponsePairs(tr, "p", "q", 20, 50, 5, 15, rng)
	if maxObs < 5 || maxObs >= 15 {
		t.Errorf("max latency %d outside [5,15)", maxObs)
	}
	// Every p pulse must be followed by a q pulse within maxObs ticks.
	for _, smp := range tr.Signal("p").Samples() {
		if !smp.Bool {
			continue
		}
		ok := false
		for _, q := range tr.Signal("q").Samples() {
			if q.Bool && q.At >= smp.At && q.At-smp.At <= maxObs {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("p pulse at %d has no q response within %d", smp.At, maxObs)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := New()
	tr.SetBool("p", 0, false)
	tr.SetBool("p", 10, true)
	tr.SetNum("x", 5, 2.75)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !got.BoolAt("p", 15) || got.BoolAt("p", 5) {
		t.Error("boolean signal did not round-trip")
	}
	if got.NumAt("x", 7) != 2.75 {
		t.Errorf("numeric signal = %v, want 2.75", got.NumAt("x", 7))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("p,notatime,1\n")); err == nil {
		t.Error("bad time must error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("p,1,notanum\n")); err == nil {
		t.Error("bad value must error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("p,1\n")); err == nil {
		t.Error("short record must error")
	}
}

func TestTraceString(t *testing.T) {
	tr := New()
	tr.SetBool("p", 3, true)
	if tr.String() != "trace{1 signals, 1 samples, end=3}" {
		t.Errorf("String = %q", tr.String())
	}
}
