package trace

import (
	"bytes"
	"strings"
	"testing"
)

// TestCSVRoundTripSignalNamedSignal is the header-detection regression: a
// signal literally named "signal" must survive WriteCSV → ReadCSV. The
// old reader skipped any first row starting "signal", so the first sample
// of such a signal silently vanished.
func TestCSVRoundTripSignalNamedSignal(t *testing.T) {
	tr := New()
	tr.SetNum("signal", 0, 1.5)
	tr.SetNum("signal", 10, 2.5)
	tr.SetNum("other", 5, 7)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !back.Has("signal") {
		t.Fatal(`signal named "signal" vanished on round trip`)
	}
	sig := back.Signal("signal")
	if got := len(sig.Samples()); got != 2 {
		t.Fatalf(`"signal" samples = %d, want 2`, got)
	}
	if sig.Samples()[0].At != 0 || sig.Samples()[0].Num != 1.5 {
		t.Errorf("first sample = %+v, want {0 1.5}", sig.Samples()[0])
	}
	if !back.Has("other") {
		t.Error("other signal lost")
	}
}

// TestCSVHeaderlessAndHeaderedInputs: a real header row is still skipped,
// and headerless input decodes from the first line.
func TestCSVHeaderRowStillSkipped(t *testing.T) {
	headered := "signal,time,value\ncpu,0,0.5\n"
	tr, err := ReadCSV(strings.NewReader(headered))
	if err != nil {
		t.Fatalf("headered: %v", err)
	}
	if tr.Has("signal") {
		t.Error("header row decoded as a sample")
	}
	if !tr.Has("cpu") || len(tr.Signal("cpu").Samples()) != 1 {
		t.Fatalf("cpu signal = %+v", tr.Signal("cpu"))
	}

	headerless := "cpu,0,0.5\ncpu,1,0.75\n"
	tr2, err := ReadCSV(strings.NewReader(headerless))
	if err != nil {
		t.Fatalf("headerless: %v", err)
	}
	if !tr2.Has("cpu") || len(tr2.Signal("cpu").Samples()) != 2 {
		t.Fatalf("headerless cpu = %+v", tr2.Signal("cpu"))
	}

	// A data row whose signal happens to be "signal" on line 1 of a
	// headerless file is data, because its time/value fields parse.
	tricky := "signal,3,9\n"
	tr3, err := ReadCSV(strings.NewReader(tricky))
	if err != nil {
		t.Fatalf("tricky: %v", err)
	}
	if !tr3.Has("signal") || len(tr3.Signal("signal").Samples()) != 1 || tr3.Signal("signal").Samples()[0].Num != 9 {
		t.Fatalf(`headerless "signal" row = %+v, want one sample 9`, tr3.Signal("signal"))
	}
}
