package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON codec for traces, the interchange format used when logs are
// produced by external tooling rather than the CSV exports.

type jsonSample struct {
	At  Time    `json:"t"`
	Num float64 `json:"v"`
}

type jsonTrace struct {
	End     Time                    `json:"end"`
	Signals map[string][]jsonSample `json:"signals"`
}

// WriteJSON encodes the trace.
func WriteJSON(w io.Writer, tr *Trace) error {
	doc := jsonTrace{End: tr.End(), Signals: map[string][]jsonSample{}}
	for _, name := range tr.Names() {
		s := tr.Signal(name)
		samples := make([]jsonSample, 0, s.Len())
		for _, smp := range s.Samples() {
			samples = append(samples, jsonSample{At: smp.At, Num: smp.Num})
		}
		doc.Signals[name] = samples
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var doc jsonTrace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: json: %w", err)
	}
	tr := New()
	for name, samples := range doc.Signals {
		for _, smp := range samples {
			tr.SetNum(name, smp.At, smp.Num)
		}
	}
	tr.SetEnd(doc.End)
	return tr, nil
}
