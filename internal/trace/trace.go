// Package trace provides timed execution traces: named boolean/numeric
// signals sampled over a discrete time axis. Traces are the common substrate
// consumed by the offline temporal-pattern evaluators (internal/temporal),
// the TEARS guarded-assertion engine (internal/tears) and the runtime
// monitors (internal/monitor).
//
// Time is modelled as int64 ticks. A signal is a right-continuous step
// function: its value at time t is the value set by the latest sample with
// timestamp <= t.
package trace

import (
	"fmt"
	"sort"
)

// Time is a timestamp in ticks. The tick unit is workload-defined
// (milliseconds in the monitoring experiments).
type Time = int64

// Sample is one observation of a signal.
type Sample struct {
	At   Time
	Num  float64
	Bool bool
}

// Signal is a named step function over time. Samples are kept sorted by
// timestamp; setting a value at an existing timestamp overwrites it.
type Signal struct {
	name    string
	samples []Sample
}

// NewSignal returns an empty signal with the given name.
func NewSignal(name string) *Signal {
	return &Signal{name: name}
}

// Name returns the signal name.
func (s *Signal) Name() string { return s.name }

// Len returns the number of samples.
func (s *Signal) Len() int { return len(s.samples) }

// Samples returns the underlying samples in timestamp order. The returned
// slice must not be modified.
func (s *Signal) Samples() []Sample { return s.samples }

// SetBool records a boolean observation at time t.
func (s *Signal) SetBool(t Time, v bool) {
	n := 0.0
	if v {
		n = 1.0
	}
	s.set(Sample{At: t, Bool: v, Num: n})
}

// SetNum records a numeric observation at time t. Its boolean projection is
// true iff the value is non-zero.
func (s *Signal) SetNum(t Time, v float64) {
	s.set(Sample{At: t, Num: v, Bool: v != 0})
}

func (s *Signal) set(smp Sample) {
	i := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At >= smp.At })
	if i < len(s.samples) && s.samples[i].At == smp.At {
		s.samples[i] = smp
		return
	}
	s.samples = append(s.samples, Sample{})
	copy(s.samples[i+1:], s.samples[i:])
	s.samples[i] = smp
}

// at returns the latest sample with timestamp <= t, and false when the
// signal has no sample yet at or before t.
func (s *Signal) at(t Time) (Sample, bool) {
	i := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At > t })
	if i == 0 {
		return Sample{}, false
	}
	return s.samples[i-1], true
}

// BoolAt returns the boolean value of the signal at time t. A signal with
// no observation yet is false.
func (s *Signal) BoolAt(t Time) bool {
	smp, ok := s.at(t)
	return ok && smp.Bool
}

// NumAt returns the numeric value of the signal at time t, zero before the
// first observation.
func (s *Signal) NumAt(t Time) float64 {
	smp, ok := s.at(t)
	if !ok {
		return 0
	}
	return smp.Num
}

// Trace is a set of named signals observed over a common time axis.
type Trace struct {
	signals map[string]*Signal
	end     Time
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{signals: make(map[string]*Signal)}
}

// Signal returns the named signal, creating it if absent.
func (tr *Trace) Signal(name string) *Signal {
	s, ok := tr.signals[name]
	if !ok {
		s = NewSignal(name)
		tr.signals[name] = s
	}
	return s
}

// Has reports whether the trace contains a signal with the given name.
func (tr *Trace) Has(name string) bool {
	_, ok := tr.signals[name]
	return ok
}

// Names returns the sorted signal names.
func (tr *Trace) Names() []string {
	out := make([]string, 0, len(tr.signals))
	for n := range tr.signals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetBool records a boolean observation on the named signal and extends the
// trace end time if needed.
func (tr *Trace) SetBool(name string, t Time, v bool) {
	tr.Signal(name).SetBool(t, v)
	if t > tr.end {
		tr.end = t
	}
}

// SetNum records a numeric observation on the named signal and extends the
// trace end time if needed.
func (tr *Trace) SetNum(name string, t Time, v float64) {
	tr.Signal(name).SetNum(t, v)
	if t > tr.end {
		tr.end = t
	}
}

// End returns the time of the latest observation (or the value set with
// SetEnd, whichever is later).
func (tr *Trace) End() Time { return tr.end }

// SetEnd extends the observation horizon of the trace: the trace is
// considered observed (with signals holding their last values) up to t.
func (tr *Trace) SetEnd(t Time) {
	if t > tr.end {
		tr.end = t
	}
}

// BoolAt returns the boolean value of the named signal at time t; a missing
// signal is false everywhere.
func (tr *Trace) BoolAt(name string, t Time) bool {
	s, ok := tr.signals[name]
	return ok && s.BoolAt(t)
}

// NumAt returns the numeric value of the named signal at time t; a missing
// signal is zero everywhere.
func (tr *Trace) NumAt(name string, t Time) float64 {
	s, ok := tr.signals[name]
	if !ok {
		return 0
	}
	return s.NumAt(t)
}

// ChangePoints returns the sorted, de-duplicated set of timestamps at which
// any signal of the trace changes, always including 0 and End(). Temporal
// evaluation over step functions only needs to inspect these instants.
func (tr *Trace) ChangePoints() []Time {
	set := map[Time]struct{}{0: {}, tr.end: {}}
	for _, s := range tr.signals {
		for _, smp := range s.samples {
			set[smp.At] = struct{}{}
		}
	}
	out := make([]Time, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the trace.
func (tr *Trace) String() string {
	total := 0
	for _, s := range tr.signals {
		total += s.Len()
	}
	return fmt.Sprintf("trace{%d signals, %d samples, end=%d}", len(tr.signals), total, tr.end)
}
