package bench

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment functions are exercised end-to-end here with small seeds;
// the shape assertions encode the qualitative claims EXPERIMENTS.md
// records.

func TestE1AllCompliantAfterEnforcement(t *testing.T) {
	tbl := E1StigRoundTrip(1)
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "1.00" {
			t.Errorf("compliance-after = %s for %v, want 1.00", row[4], row)
		}
	}
	// Zero drift keeps the host compliant before enforcement too.
	if tbl.Rows[0][2] != "1.00" {
		t.Errorf("zero-drift before-compliance = %s", tbl.Rows[0][2])
	}
}

func TestE2HighPrecisionRecall(t *testing.T) {
	tbl := E2Nalabs(2)
	for _, row := range tbl.Rows {
		p, _ := strconv.ParseFloat(row[2], 64)
		r, _ := strconv.ParseFloat(row[3], 64)
		if p < 0.9 || r < 0.9 {
			t.Errorf("precision/recall %v/%v below 0.9 in row %v", p, r, row)
		}
	}
}

func TestE3LatencyMonotoneInPeriod(t *testing.T) {
	tbl := E3MonitorLatency(3)
	var prev float64 = -1
	for _, row := range tbl.Rows {
		lat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad latency cell %q", row[2])
		}
		if lat < prev {
			t.Errorf("latency must not decrease with period: %v", tbl.String())
			break
		}
		prev = lat
	}
}

func TestE3bPerfectAgreement(t *testing.T) {
	tbl := E3bLiveVsOffline(4)
	if tbl.Rows[0][2] != "0" {
		t.Errorf("live and offline verdicts disagree: %v", tbl.Rows[0])
	}
}

func TestE4ZoneBeatsDiscrete(t *testing.T) {
	tbl := E4ModelCheck()
	for _, row := range tbl.Rows {
		if row[1] != "true" {
			t.Errorf("response within 2*period must hold on the ring: %v", row)
		}
		z, _ := strconv.Atoi(row[2])
		d, _ := strconv.Atoi(row[4])
		if z >= d {
			t.Errorf("zone states %d should be below discrete states %d: %v", z, d, row)
		}
	}
}

func TestE5AllEdgesWins(t *testing.T) {
	tbl := E5TestGen(5)
	for _, row := range tbl.Rows {
		edges, _ := strconv.Atoi(row[1])
		all, _ := strconv.Atoi(row[2])
		rw, _ := strconv.Atoi(row[3])
		if all < edges {
			t.Errorf("all-edges below floor: %v", row)
		}
		if all > rw {
			t.Errorf("all-edges (%d) must not exceed random walk (%d): %v", all, rw, row)
		}
	}
}

func TestE6QualitativeShape(t *testing.T) {
	tbl := E6Pipeline(6)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Row 0: both on -> audit 0. Row 3: both off -> dev 0, ops 0.
	if tbl.Rows[0][5] != "0" {
		t.Errorf("both-on audit = %s, want 0", tbl.Rows[0][5])
	}
	if tbl.Rows[3][3] != "0" || tbl.Rows[3][4] != "0" {
		t.Errorf("both-off must catch nothing early: %v", tbl.Rows[3])
	}
	// ttd-code with prevention (row 0) below without (row 2).
	with, _ := strconv.ParseFloat(tbl.Rows[0][6], 64)
	without, _ := strconv.ParseFloat(tbl.Rows[2][6], 64)
	if with >= without {
		t.Errorf("prevention must cut code time-to-detect: %v vs %v", with, without)
	}
}

func TestE6bBreakEvenFiniteAndWins(t *testing.T) {
	tbl := E6bEconomics(1)
	for _, row := range tbl.Rows {
		be, err := strconv.ParseFloat(row[2], 64)
		if err != nil || be <= 0 {
			t.Errorf("break-even must be positive finite: %v", row)
		}
		if row[3] != "true" {
			t.Errorf("prevention must win at 10x break-even: %v", row)
		}
	}
}

func TestE7ActivationsScale(t *testing.T) {
	tbl := E7Tears(7)
	var prev int
	for _, row := range tbl.Rows {
		act, _ := strconv.Atoi(row[1])
		if act <= prev {
			t.Errorf("activations must grow with the log: %v", tbl.String())
			break
		}
		prev = act
	}
}

func TestE8OverallAccuracy(t *testing.T) {
	tbl := E8Extract()
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "overall" {
		t.Fatalf("last row = %v", last)
	}
	acc, _ := strconv.ParseFloat(last[2], 64)
	if acc < 0.9 {
		t.Errorf("overall accuracy = %v, want >= 0.9", acc)
	}
}

func TestE9LivenessVerdictFlips(t *testing.T) {
	tbl := E9Liveness()
	for _, row := range tbl.Rows {
		avoid := row[1] == "true"
		holds := row[2] == "true"
		if avoid == holds {
			t.Errorf("a-->c must hold exactly when there is no avoiding branch: %v", row)
		}
	}
}

func TestE10ProtectedHostRecovers(t *testing.T) {
	tbl := E10ComplianceSeries(1)
	if len(tbl.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 samples", len(tbl.Rows))
	}
	lastProt, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][1], 64)
	lastUnprot, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][2], 64)
	if lastProt != 1 {
		t.Errorf("protected host must end compliant, got %v", lastProt)
	}
	if lastUnprot >= 1 {
		t.Errorf("unprotected host must end degraded, got %v", lastUnprot)
	}
	// Unprotected compliance never increases.
	prev := 2.0
	for _, row := range tbl.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		if v > prev {
			t.Errorf("unprotected compliance increased: %v", tbl.String())
			break
		}
		prev = v
	}
}

func TestE11VulnScanRemediates(t *testing.T) {
	tbl := E11VulnScan(1)
	for _, row := range tbl.Rows {
		before, _ := strconv.Atoi(row[2])
		if before == 0 {
			t.Errorf("all packages are vulnerable by construction: %v", row)
		}
		if row[5] != "1.00" {
			t.Errorf("compliance-after = %s, want 1.00: %v", row[5], row)
		}
		if row[6] != "0" {
			t.Errorf("matches-after = %s, want 0: %v", row[6], row)
		}
	}
}

func TestE12SecurityLevelsShape(t *testing.T) {
	tbl := E12SecurityLevels(1)
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 FR classes", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		baseline, drifted, enforced := row[2], row[3], row[4]
		if enforced != baseline {
			t.Errorf("%s: enforcement must restore the baseline level: %v", row[0], row)
		}
		if drifted > baseline {
			t.Errorf("%s: drift cannot raise the achieved level: %v", row[0], row)
		}
	}
}

func TestE3cAdaptiveSavesPolls(t *testing.T) {
	tbl := E3cAdaptivePolling(3)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	fixedPolls, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	adaptPolls, _ := strconv.ParseFloat(tbl.Rows[1][2], 64)
	if adaptPolls >= fixedPolls/2 {
		t.Errorf("adaptive should at least halve polls: %v vs %v", adaptPolls, fixedPolls)
	}
	adaptLat, _ := strconv.ParseFloat(tbl.Rows[1][3], 64)
	if adaptLat < 0 || adaptLat > 80 {
		t.Errorf("adaptive latency %v must stay within the 8x max period", adaptLat)
	}
}

func TestAllProducesEveryTable(t *testing.T) {
	tables := All(1)
	if len(tables) != 18 {
		t.Fatalf("All = %d tables, want 18", len(tables))
	}
	for _, tbl := range tables {
		if !strings.HasPrefix(tbl.Title, "E") {
			t.Errorf("unexpected title %q", tbl.Title)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %q is empty", tbl.Title)
		}
	}
}

func TestE13FleetShape(t *testing.T) {
	tbl := E13FleetAudit(1)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 scenarios", len(tbl.Rows))
	}
	// Columns: scenario, shards, workers, requirements-run,
	// cache-hit-rate, errors, degraded-hosts, wall-ms, speedup.
	incr := tbl.Rows[4]
	if !strings.Contains(incr[0], "incremental") {
		t.Fatalf("row 4 = %v, want the incremental scenario", incr)
	}
	if incr[3] != "8" {
		t.Errorf("incremental re-sweep re-executed %s requirements, want 8 (one host)", incr[3])
	}
	if incr[4] != "94%" {
		t.Errorf("cache hit rate = %s, want 94%% (120/128)", incr[4])
	}
	down := tbl.Rows[5]
	if down[5] != "8" || down[6] != "1" {
		t.Errorf("unreachable scenario must show 8 errors on 1 degraded host: %v", down)
	}
	// Clean full sweeps end error-free.
	for _, row := range tbl.Rows[:5] {
		if row[5] != "0" {
			t.Errorf("scenario %q has errors: %v", row[0], row)
		}
	}
}

func TestE14SchedulerShape(t *testing.T) {
	tbl := E14FleetScheduler(1)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 scenarios", len(tbl.Rows))
	}
	// Columns: scenario, shards, workers, requirements-run, rate, steals,
	// load-imbalance, wall-ms. Wall times and steal placement are
	// timing-dependent; the totals asserted here are not.
	static, steal := tbl.Rows[0], tbl.Rows[1]
	if !strings.Contains(static[0], "static") || !strings.Contains(steal[0], "work-stealing") {
		t.Fatalf("skew rows out of order: %v / %v", static, steal)
	}
	if static[5] != "0" {
		t.Errorf("static scheduling stole %s hosts, want 0", static[5])
	}
	if n, _ := strconv.Atoi(steal[5]); n == 0 {
		t.Errorf("work stealing moved no hosts off the slow shard: %v", steal)
	}
	dedupOn := tbl.Rows[3]
	if dedupOn[3] != "8" || dedupOn[4] != "94%" {
		t.Errorf("dedup must execute 8 of 128 checks at rate 94%%: %v", dedupOn)
	}
	incr, resumed := tbl.Rows[4], tbl.Rows[5]
	if !strings.Contains(resumed[0], "restart-resume") {
		t.Fatalf("row 5 = %v, want the restart-resume scenario", resumed)
	}
	if incr[3] != resumed[3] || incr[4] != resumed[4] {
		t.Errorf("resumed coordinator diverges from the uninterrupted sweep: %v vs %v", incr, resumed)
	}
	if resumed[4] != "94%" {
		t.Errorf("restart-resume hit rate = %s, want 94%% (15/16 hosts replayed)", resumed[4])
	}
}

func TestE7bAuditAlwaysCompletes(t *testing.T) {
	tbl := E7bEngineRobustness(1)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 scenarios", len(tbl.Rows))
	}
	// Columns: scenario, workers, attempt-budget, pass, error, incomplete, ...
	total := func(row []string) int {
		n := 0
		for _, c := range row[3:6] {
			v, err := strconv.Atoi(c)
			if err != nil {
				t.Fatalf("bad cell %q: %v", c, err)
			}
			n += v
		}
		return n
	}
	reqs := total(tbl.Rows[0])
	for _, row := range tbl.Rows {
		if total(row) != reqs {
			t.Errorf("scenario %q: %d verdicts, want %d (audit must complete)", row[0], total(row), reqs)
		}
	}
	if clean := tbl.Rows[0]; clean[4] != "0" || clean[5] != "0" {
		t.Errorf("clean row has errors/incompletes: %v", clean)
	}
	if retry := tbl.Rows[2]; retry[5] != "0" || retry[7] == "0" {
		t.Errorf("retry row must recover transients via retries: %v", retry)
	}
	if down := tbl.Rows[3]; down[3] != "0" || down[4] != strconv.Itoa(reqs) {
		t.Errorf("unreachable row must be all-ERROR: %v", down)
	}
}
