// Package bench implements the VeriDevOps experiment suite E1–E8 defined
// in DESIGN.md. Each experiment regenerates one table of EXPERIMENTS.md;
// cmd/vdo-bench prints them and the root bench_test.go wraps them in
// testing.B benchmarks. All experiments are deterministic in their seeds.
package bench

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"veridevops/internal/automata"
	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/extract"
	"veridevops/internal/fleet"
	"veridevops/internal/gwt"
	"veridevops/internal/host"
	"veridevops/internal/iec62443"
	"veridevops/internal/mc"
	"veridevops/internal/monitor"
	"veridevops/internal/nalabs"
	"veridevops/internal/pipeline"
	"veridevops/internal/report"
	"veridevops/internal/stig"
	"veridevops/internal/tctl"
	"veridevops/internal/tears"
	"veridevops/internal/temporal"
	"veridevops/internal/trace"
	"veridevops/internal/vulndb"
)

// E1StigRoundTrip audits and enforces the Ubuntu and Windows 10 catalogues
// on hosts drifted by increasing amounts.
func E1StigRoundTrip(seed int64) *report.Table {
	t := report.New("E1: STIG catalogue round-trip (check -> enforce -> re-check)",
		"host", "drift-ops", "compliance-before", "alarms(fail)", "compliance-after")
	t.Note = "after enforcement every encoded finding must PASS (compliance 1.00)"
	rng := rand.New(rand.NewSource(seed))
	for _, drift := range []int{0, 2, 5, 10, 20} {
		h := host.NewUbuntu1804()
		cat := stig.UbuntuCatalog(h)
		cat.Run(core.CheckAndEnforce) // harden to baseline
		host.DriftLinux(h, drift, rng)
		before := cat.Run(core.CheckOnly)
		after := cat.Run(core.CheckAndEnforce)
		_, fails, _ := before.Counts()
		t.AddRow("ubuntu-18.04", drift, before.Compliance(), fails, after.Compliance())
	}
	for _, drift := range []int{0, 2, 4, 8} {
		w := host.NewWindows10()
		cat := stig.Win10Catalog(w)
		cat.Run(core.CheckAndEnforce)
		host.DriftWindows(w, drift, rng)
		before := cat.Run(core.CheckOnly)
		after := cat.Run(core.CheckAndEnforce)
		_, fails, _ := before.Counts()
		t.AddRow("windows-10", drift, before.Compliance(), fails, after.Compliance())
	}
	return t
}

// E2Nalabs measures smell-detection precision/recall on seeded corpora.
func E2Nalabs(seed int64) *report.Table {
	t := report.New("E2: NALABS smell detection on seeded corpora",
		"requirements", "smell-rate", "precision", "recall", "min-per-smell-recall")
	t.Note = "dictionary metrics; precision/recall vs injected ground truth"
	an := nalabs.NewAnalyzer()
	for _, n := range []int{10, 100, 1000, 10000} {
		for _, rate := range []float64{0.2, 0.5} {
			rng := rand.New(rand.NewSource(seed + int64(n)))
			corpus := nalabs.GenerateCorpus(n, rate, rng)
			p, r := nalabs.Score(an, corpus)
			per := nalabs.ScorePerSmell(an, corpus)
			minPer := 1.0
			for _, v := range per {
				if v < minPer {
					minPer = v
				}
			}
			t.AddRow(n, rate, p, r, minPer)
		}
	}
	return t
}

// E3MonitorLatency measures detection latency of the reactive-protection
// scheduler as a function of the polling period, with the event-driven
// offline evaluator as the ablation baseline.
func E3MonitorLatency(seed int64) *report.Table {
	t := report.New("E3: detection latency vs polling period",
		"period", "injections", "mean-latency", "theoretical(period/2)", "polls")
	t.Note = "polling monitors detect at the first poll after the violation; event-driven trace evaluation pins the exact change point (latency 0), at the cost of instrumenting every state change"
	rng := rand.New(rand.NewSource(seed))
	const runs = 40
	for _, period := range []trace.Time{1, 5, 10, 25, 50, 100} {
		totalLat, polls := 0.0, 0
		for k := 0; k < runs; k++ {
			h := host.NewUbuntu1804()
			s := monitor.NewScheduler(period)
			s.Watch("V-219157", stig.NewV219157(h))
			inject := trace.Time(rng.Int63n(500)) + 1
			s.Run(inject+20*period, []monitor.TimedAction{
				{At: inject, Do: func() { h.Install("nis", "1") }},
			})
			st := monitor.LatencyStats(s.Alarms(), map[string]trace.Time{"V-219157": inject})
			totalLat += st.MeanDetectionLatency
			polls += int((inject + 20*period) / period)
		}
		t.AddRow(period, runs, totalLat/runs, float64(period)/2, polls/runs)
	}
	return t
}

// E3cAdaptivePolling compares fixed polling against adaptive backoff: the
// polls spent over the horizon versus the detection latency paid.
func E3cAdaptivePolling(seed int64) *report.Table {
	t := report.New("E3c: fixed vs adaptive polling (base period 10, backoff to 8x)",
		"mode", "runs", "polls-per-run", "mean-latency")
	t.Note = "adaptive backoff halves polls on this horizon (the un-enforced violation pins the period back to base once detected); fully healthy hosts see ~5x savings, and latency stays bounded by the 8x max period"
	rng := rand.New(rand.NewSource(seed))
	const runs = 30
	measure := func(adaptive bool) (float64, float64) {
		totalPolls, totalLat := 0, 0.0
		for k := 0; k < runs; k++ {
			h := host.NewUbuntu1804()
			s := monitor.NewScheduler(10)
			if adaptive {
				s.Adaptive = &monitor.AdaptivePolicy{}
			}
			s.Watch("V-219157", stig.NewV219157(h))
			inject := 1500 + trace.Time(rng.Int63n(500))
			s.Run(3000, []monitor.TimedAction{
				{At: inject, Do: func() { h.Install("nis", "1") }},
			})
			st := monitor.LatencyStats(s.Alarms(), map[string]trace.Time{"V-219157": inject})
			totalPolls += s.Polls
			totalLat += st.MeanDetectionLatency
		}
		return float64(totalPolls) / runs, totalLat / runs
	}
	fp, fl := measure(false)
	ap, al := measure(true)
	t.AddRow("fixed", runs, fp, fl)
	t.AddRow("adaptive", runs, ap, al)
	return t
}

// E4ModelCheck measures zone-based model-checking cost against plant size,
// with the discrete-time explorer as the ablation.
func E4ModelCheck() *report.Table {
	t := report.New("E4: observer model checking cost vs plant size",
		"plant-locs", "holds", "zone-states", "zone-ms", "discrete-states", "discrete-ms")
	t.Note = "plant ring of n locations, period 10, response observer a->c within 2*period; zone abstraction explores far fewer states than unit-step discretisation"
	for _, n := range []int{4, 8, 16, 32, 64} {
		mk := func() *automata.Network {
			labels := make([]string, n)
			for i := range labels {
				labels[i] = fmt.Sprintf("ev%d", i)
			}
			labels[0], labels[2] = "a", "c"
			plant := automata.CyclicPlant("plant", n, labels, 10)
			return automata.MustNetwork(plant, automata.ResponseTimedObserver("a", "c", 20))
		}
		start := time.Now()
		holds, _, zstats, err := mc.NewChecker(mk()).CheckErrorFree()
		zms := time.Since(start).Milliseconds()
		if err != nil {
			t.AddRow(n, "error", err.Error(), "-", "-", "-")
			continue
		}
		start = time.Now()
		_, _, dstats, derr := mc.NewDiscreteChecker(mk()).CheckErrorFree()
		dms := time.Since(start).Milliseconds()
		if derr != nil {
			t.AddRow(n, holds, zstats.StatesExplored, zms, "error", derr.Error())
			continue
		}
		t.AddRow(n, holds, zstats.StatesExplored, zms, dstats.StatesExplored, dms)
	}
	return t
}

// E5TestGen compares path generators on steps needed for full edge
// coverage.
func E5TestGen(seed int64) *report.Table {
	t := report.New("E5: steps to 100% edge coverage per generator",
		"vertices", "edges", "all-edges", "random-walk", "weighted-walk")
	t.Note = "greedy all-edges approaches the chinese-postman optimum; random walks pay a super-linear penalty on larger models"
	for _, n := range []int{10, 50, 100, 250, 500} {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		m := gwt.RandomModel(fmt.Sprintf("m%d", n), n, n, rng)
		all := gwt.TotalSteps(gwt.AllEdges(m))
		rw := gwt.TotalSteps(gwt.RandomWalk(m, rand.New(rand.NewSource(seed)), gwt.EdgeCoverageAtLeast(1)))
		ww := gwt.TotalSteps(gwt.WeightedRandomWalk(m, rand.New(rand.NewSource(seed)), gwt.EdgeCoverageAtLeast(1)))
		t.AddRow(n, len(m.Edges), all, rw, ww)
	}
	return t
}

// E6Pipeline runs the prevention/protection ablation of the DATE paper's
// framework claim.
func E6Pipeline(seed int64) *report.Table {
	t := report.New("E6: prevention vs protection (10k commits)",
		"prevention", "protection", "violations", "dev", "ops", "audit", "ttd-code", "ttd-drift", "escape-rate", "gate-cost")
	t.Note = "prevention catches code violations earliest and cheapest; protection is the only catcher of runtime drift; the combination leaves nothing to audit"
	for _, cfg := range []struct{ prev, prot bool }{
		{true, true}, {true, false}, {false, true}, {false, false},
	} {
		c := pipeline.DefaultConfig()
		c.Prevention, c.Protection = cfg.prev, cfg.prot
		r := pipeline.Simulate(c, 10000, rand.New(rand.NewSource(seed)))
		dev, ops, audit, _ := r.Counts()
		t.AddRow(cfg.prev, cfg.prot, len(r.Violations), dev, ops, audit,
			r.MeanLatency(pipeline.CodeViolation), r.MeanLatency(pipeline.DriftViolation),
			r.EscapeRate(), r.GateCost)
	}
	return t
}

// E6bEconomics locates the break-even production-exposure price at which
// the prevention gate pays for itself, across gate-cost settings.
func E6bEconomics(seed int64) *report.Table {
	t := report.New("E6b: break-even exposure price for the prevention gate",
		"gate-latency", "gate-cost-per-tick", "break-even-exposure-price", "prevention-wins-at-10x")
	t.Note = "above the break-even price per exposure tick, running the verification gate is cheaper than paying for production exposure"
	for _, gateLatency := range []int64{5, 20, 80} {
		for _, gatePrice := range []float64{1, 10} {
			cfg := pipeline.DefaultConfig()
			cfg.GateLatency = gateLatency
			with := pipeline.Simulate(cfg, 5000, rand.New(rand.NewSource(seed)))
			cfgOff := cfg
			cfgOff.Prevention = false
			without := pipeline.Simulate(cfgOff, 5000, rand.New(rand.NewSource(seed)))
			be := pipeline.BreakEvenExposureCost(with, without, gatePrice, 0)
			probe := pipeline.CostModel{GateCostPerTick: gatePrice, ExposureCostPerTick: be * 10}
			wins := probe.TotalCost(with) < probe.TotalCost(without)
			t.AddRow(gateLatency, gatePrice, be, wins)
		}
	}
	return t
}

// E7Tears measures guarded-assertion evaluation over growing logs.
func E7Tears(seed int64) *report.Table {
	t := report.New("E7: TEARS G/A evaluation vs log size",
		"events", "activations", "violations", "eval-ms", "ns-per-event")
	t.Note = "evaluation is near-linear in the number of logged events"
	ga, err := tears.ParseGA("GA resp: when req then ack within 10 ms")
	if err != nil {
		panic(err)
	}
	for _, n := range []int{1000, 10000, 100000, 500000} {
		tr := trace.New()
		rng := rand.New(rand.NewSource(seed))
		trace.GenResponsePairs(tr, "req", "ack", n/4, 20, 1, 15, rng)
		start := time.Now()
		v := tears.Evaluate(tr, ga)
		el := time.Since(start)
		t.AddRow(n, v.Activations, len(v.Violations), el.Milliseconds(),
			float64(el.Nanoseconds())/float64(n))
	}
	return t
}

// E7bEngineRobustness measures the fault-tolerant audit engine under
// deterministic fault injection: the hardened Ubuntu STIG catalogue is
// wrapped in seeded injectors (panicking, transiently failing and slow
// checks) and audited with and without a retry budget, plus an
// unreachable-host scenario where every probe panics. The audit always
// completes; retries convert transient faults back into real verdicts;
// panics surface as ERROR, never a crash.
func E7bEngineRobustness(seed int64) *report.Table {
	t := report.New("E7b: engine robustness under fault injection",
		"scenario", "workers", "attempt-budget", "pass", "error", "incomplete",
		"attempts", "retries", "panics-recovered", "wall-ms")
	t.Note = "fault plan per requirement: 4% panic, 30% transient, 10% slow (seeded); a retry budget recovers transients and most panics, and an unreachable host degrades to all-ERROR instead of crashing the audit"

	audit := func(scenario string, cat *core.Catalog, workers, attempts int) {
		pol := engine.Policy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
		rep, st := cat.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: workers, Checks: pol})
		pass, errs, inc := 0, 0, 0
		for _, r := range rep.Results {
			switch r.After {
			case core.CheckPass:
				pass++
			case core.CheckError:
				errs++
			case core.CheckIncomplete:
				inc++
			}
		}
		t.AddRow(scenario, workers, attempts, pass, errs, inc,
			st.Attempts, st.Retries, st.Panics, report.Millis(st.Wall))
	}

	plan := engine.FaultPlan{
		PanicProb: 0.04, TransientProb: 0.30,
		SlowProb: 0.10, SlowDelay: 100 * time.Microsecond,
	}
	mk := func(inject bool) (*core.Catalog, *host.Linux) {
		h := host.NewUbuntu1804()
		cat := stig.UbuntuCatalog(h)
		cat.Run(core.CheckAndEnforce) // harden: a clean audit passes everywhere
		if !inject {
			return cat, h
		}
		faulted := core.NewCatalog()
		for i, r := range cat.All() {
			faulted.MustRegister(core.InjectFaults(r,
				engine.NewFaultInjector(seed+int64(i), plan)))
		}
		return faulted, h
	}

	clean, _ := mk(false)
	audit("clean", clean, 8, 1)
	noRetry, _ := mk(true)
	audit("faulted, no retry", noRetry, 8, 1)
	retried, _ := mk(true)
	audit("faulted, retry", retried, 8, 6)
	down, h := mk(false)
	h.SetUnreachable(true)
	audit("unreachable host", down, 8, 2)
	return t
}

// E8Extract measures NL-to-pattern formalisation accuracy per behaviour
// class.
func E8Extract() *report.Table {
	t := report.New("E8: NL requirement formalisation accuracy",
		"behaviour", "sentences", "accuracy")
	t.Note = "labelled corpus of security requirements; boilerplate + heuristic rules"
	corpus := extract.BenchmarkCorpus()
	per := extract.AccuracyPerBehaviour(corpus)
	counts := map[tctl.Behaviour]int{}
	for _, ls := range corpus {
		counts[ls.Behaviour]++
	}
	for _, b := range []tctl.Behaviour{tctl.Absence, tctl.Universality, tctl.Existence, tctl.Response, tctl.Precedence} {
		t.AddRow(b.String(), counts[b], per[b])
	}
	t.AddRow("overall", len(corpus), extract.Accuracy(corpus))
	return t
}

// E3bLiveVsOffline cross-validates the live polling monitors against the
// offline TCTL evaluator on replayed traces — the monitoring-mode ablation
// companion to E3.
func E3bLiveVsOffline(seed int64) *report.Table {
	t := report.New("E3b: live monitor vs offline TCTL evaluation agreement",
		"trials", "agree", "disagree")
	t.Note = "both modes must return the same verdict for A[] p on random traces"
	rng := rand.New(rand.NewSource(seed))
	agree, disagree := 0, 0
	for i := 0; i < 100; i++ {
		tr := trace.New()
		trace.GenRandomToggles(tr, "p", 1+rng.Intn(6), 1000, rng)
		// Force the signal to start true so the invariant is non-trivial.
		tr.Signal("p").SetBool(0, true)
		clk := temporal.NewSimClock()
		opt := temporal.Options{Clock: clk, Period: 1, Boundary: 1001}
		g := temporal.NewGlobalUniversality(temporal.TraceProbe(tr, "p", clk), opt)
		//lint:ignore directcheck the ablation compares raw evaluator verdicts; engine plumbing would only add noise
		live := g.Check() == core.CheckPass
		offline := tctl.Holds(tr, tctl.GlobalUniversality("p"))
		if live == offline {
			agree++
		} else {
			disagree++
		}
	}
	t.AddRow(100, agree, disagree)
	return t
}

// E9Liveness exercises the unbounded leads-to (liveness) checker: plants
// where the response is forced versus plants with an avoiding branch, at
// growing sizes.
func E9Liveness() *report.Table {
	t := report.New("E9: unbounded leads-to (pending-lasso) checking",
		"plant-locs", "avoiding-branch", "a-->c holds", "states", "transitions")
	t.Note = "liveness needs lasso detection, not reachability; an avoiding branch flips the verdict without changing any bounded-reachability property"
	for _, n := range []int{4, 8, 16, 32} {
		for _, avoid := range []bool{false, true} {
			plant := livenessPlant(n, avoid)
			holds, stats, err := mc.CheckLeadsToNetwork(automata.MustNetwork(plant), "a", "c")
			if err != nil {
				t.AddRow(n, avoid, "error", err.Error(), "-")
				continue
			}
			t.AddRow(n, avoid, holds, stats.StatesExplored, stats.Transitions)
		}
	}
	return t
}

// livenessPlant builds an n-location ring emitting a ... c ...; when avoid
// is set, one location after the "a" emission gains a self-loop that can
// postpone "c" forever.
func livenessPlant(n int, avoid bool) *automata.Automaton {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("ev%d", i)
	}
	labels[0], labels[2] = "a", "c"
	plant := automata.CyclicPlant("plant", n, labels, 5)
	if avoid {
		plant.AddEdge(automata.Edge{
			From: "l1", To: "l1", Label: "stall",
			Guard:  automata.Guard{{Clock: "x_plant", Op: automata.OpGe, Bound: 5}},
			Resets: []string{"x_plant"},
		})
	}
	return plant
}

// E10ComplianceSeries reproduces the framework's headline picture as a
// time series: a hardened host drifts at random instants while the
// reactive-protection scheduler polls and auto-repairs; compliance is
// sampled over time with protection on versus off. (The DATE paper's
// Figure 1 is the process loop this series visualises.)
func E10ComplianceSeries(seed int64) *report.Table {
	t := report.New("E10: compliance over time under drift (protection on vs off)",
		"time", "compliance-protected", "compliance-unprotected")

	runSeries := func(protect bool) ([]float64, int) {
		h := host.NewUbuntu1804()
		cat := stig.UbuntuCatalog(h)
		cat.Run(core.CheckAndEnforce)
		s := monitor.NewScheduler(20)
		s.AutoEnforce = protect
		if protect {
			s.WatchCatalog(cat)
		}
		rng := rand.New(rand.NewSource(seed))
		var actions []monitor.TimedAction
		var samples []float64
		for _, at := range []trace.Time{150, 380, 610, 840} {
			at := at
			actions = append(actions, monitor.TimedAction{
				At: at, Do: func() { host.DriftLinux(h, 3, rng) },
			})
		}
		for at := trace.Time(0); at <= 1000; at += 100 {
			at := at
			actions = append(actions, monitor.TimedAction{
				At: at, Do: func() { samples = append(samples, cat.Run(core.CheckOnly).Compliance()) },
			})
		}
		s.Run(1000, actions)
		return samples, len(s.Alarms())
	}

	protected, alarms := runSeries(true)
	unprotected, _ := runSeries(false)
	for i := range protected {
		t.AddRow(i*100, protected[i], unprotected[i])
	}
	t.Note = fmt.Sprintf("protected host repaired by %d alarms and ends compliant; the unprotected host decays monotonically", alarms)
	return t
}

// E11VulnScan runs the vulnerability-database chain: synthetic advisory
// feeds of growing size are matched against a host with vulnerable
// package versions, patch requirements are generated and enforced, and
// the host is re-scanned.
func E11VulnScan(seed int64) *report.Table {
	t := report.New("E11: advisory feed -> scan -> patch requirements -> re-scan",
		"packages", "advisories", "matches-before", "critical", "max-score", "compliance-after", "matches-after")
	t.Note = "every match becomes an enforceable RQCODE requirement; remediation clears the scan"
	for _, nPkgs := range []int{5, 20, 50, 100} {
		rng := rand.New(rand.NewSource(seed + int64(nPkgs)))
		pkgs := make([]string, nPkgs)
		h := host.NewLinux()
		for i := range pkgs {
			pkgs[i] = fmt.Sprintf("pkg%03d", i)
			h.Install(pkgs[i], "1.0.0") // below every generated FixedIn
		}
		feed := vulndb.GenerateFeed(pkgs, 4, rng)
		db, err := vulndb.NewDB(feed)
		if err != nil {
			t.AddRow(nPkgs, "error", err.Error(), "-", "-", "-", "-")
			continue
		}
		before := db.Scan(h)
		sum := vulndb.Summarize(before)
		cat := vulndb.Catalog(db, h)
		rep := cat.Run(core.CheckAndEnforce)
		after := db.Scan(h)
		t.AddRow(nPkgs, db.Len(), len(before), sum.Critical, sum.MaxScore,
			rep.Compliance(), len(after))
	}
	return t
}

// E12SecurityLevels maps the catalogue state onto the IEC 62443 security
// levels the paper cites: per foundational-requirement class, the achieved
// SL before drift, after drift and after enforcement.
func E12SecurityLevels(seed int64) *report.Table {
	t := report.New("E12: IEC 62443 achieved security levels (baseline / drifted / enforced)",
		"class", "target", "baseline", "drifted", "enforced", "blocking-when-drifted")
	t.Note = "tagged findings map catalogue PASS/FAIL onto SL per foundational requirement; enforcement restores the target profile"

	h := host.NewUbuntu1804()
	w := host.NewWindows10()
	lin := stig.UbuntuCatalog(h)
	win := stig.Win10Catalog(w)
	lin.Run(core.CheckAndEnforce)
	win.Run(core.CheckAndEnforce)
	combined := func() core.Report {
		a := lin.Run(core.CheckOnly)
		b := win.Run(core.CheckOnly)
		return core.Report{Results: append(a.Results, b.Results...)}
	}
	assess := func() iec62443.Assessment {
		a, err := iec62443.Assess(combined(), iec62443.BuiltinTags(), iec62443.TypicalTarget())
		if err != nil {
			panic(err)
		}
		return a
	}

	baseline := assess()
	rng := rand.New(rand.NewSource(seed))
	host.DriftLinux(h, 12, rng)
	host.DriftWindows(w, 8, rng)
	drifted := assess()
	lin.Run(core.CheckAndEnforce)
	win.Run(core.CheckAndEnforce)
	enforced := assess()

	for i, fr := range iec62443.AllFRs {
		t.AddRow(fr.String(),
			fmt.Sprintf("SL-%d", baseline.Classes[i].Target),
			fmt.Sprintf("SL-%d", baseline.Classes[i].Achieved),
			fmt.Sprintf("SL-%d", drifted.Classes[i].Achieved),
			fmt.Sprintf("SL-%d", enforced.Classes[i].Achieved),
			strings.Join(drifted.Classes[i].Blocking, ","))
	}
	return t
}

// E13FleetAudit measures the sharded fleet coordinator: sequential
// per-host auditing versus sharded sweeps at growing shard counts, the
// incremental re-sweep with one changed host, and an unreachable host
// degrading its shard to ERROR verdicts without stalling the fleet. Every
// check pays a simulated 50µs probe round-trip (the live-audit transport
// cost that makes sharding pay); cmd/fleetaudit -bench records the same
// matrix into BENCH_fleet.json at the full 100µs setting.
func E13FleetAudit(seed int64) *report.Table {
	const nHosts = 16
	t := report.New("E13: sharded fleet audit (16 hosts, 50us probe round-trip)",
		"scenario", "shards", "workers", "requirements-run", "cache-hit-rate",
		"errors", "degraded-hosts", "wall-ms", "speedup")
	t.Note = "host-affine shards cut wall time near-linearly; the incremental cache re-executes only the changed host; an unreachable host degrades to ERROR without stalling the sweep"

	mk := func() ([]fleet.Target, []*host.Linux) {
		targets, machines := fleet.LinuxFleet(nHosts)
		for i := range targets {
			targets[i] = fleet.WithProbeDelay(targets[i], 50*time.Microsecond)
		}
		return targets, machines
	}

	targets, _ := mk()
	t0 := time.Now()
	for _, tg := range targets {
		tg.Catalog.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 1})
	}
	seqWall := time.Since(t0)
	speedup := func(w time.Duration) float64 { return float64(seqWall) / float64(w) }
	t.AddRow("sequential per-host RunEngine", 1, 1, nHosts*8, "-", 0, 0,
		report.Millis(seqWall), 1.0)

	for _, shards := range []int{1, 4, 16} {
		targets, _ := mk()
		_, st := fleet.Sweep(targets, fleet.Options{Shards: shards, Workers: 4})
		t.AddRow("full sharded sweep", shards, 4, st.Requirements, "-", st.Errors,
			st.DegradedHosts, report.Millis(st.Wall), speedup(st.Wall))
	}

	targets, machines := mk()
	coord := fleet.NewCoordinator()
	coord.Sweep(targets, fleet.Options{Shards: 16, Workers: 4})
	host.DriftLinux(machines[3], 3, rand.New(rand.NewSource(seed)))
	_, st := coord.Sweep(targets, fleet.Options{Shards: 16, Workers: 4, Incremental: true})
	t.AddRow("incremental re-sweep (1/16 changed)", 16, 4, st.CacheMisses,
		report.Percent(st.CacheHitRate()), st.Errors, st.DegradedHosts,
		report.Millis(st.Wall), speedup(st.Wall))

	targets, machines = mk()
	machines[5].SetUnreachable(true)
	_, st = fleet.Sweep(targets, fleet.Options{Shards: 4, Workers: 4})
	t.AddRow("one host unreachable", 4, 4, st.Requirements, "-", st.Errors,
		st.DegradedHosts, report.Millis(st.Wall), speedup(st.Wall))
	return t
}

// E14FleetScheduler measures the dynamic scheduling layer on top of the
// sharded sweep: work stealing on a skewed fleet (one host 10x slower
// than its co-tenants, planted in the largest affinity bucket), cross-host
// check dedup on a homogeneous fleet, and the persistent cache resuming an
// incremental sweep across a simulated process restart. Static scheduling
// paces the whole sweep at the slow bucket; stealing drains the bucket's
// healthy hosts onto idle shards once per-host costs are known.
func E14FleetScheduler(seed int64) *report.Table {
	t := report.New("E14: work-stealing scheduler, check dedup and persistent cache (skew: 160 hosts, 1ms probes, one 10x slower)",
		"scenario", "shards", "workers", "requirements-run", "rate", "steals",
		"load-imbalance", "wall-ms")

	// Skewed fleet: a cost-learning sweep first, then the measured sweep,
	// so the scheduler orders queues by observed per-host cost.
	walls := map[string]time.Duration{}
	for _, mode := range []struct {
		name  string
		sched fleet.Scheduling
	}{{"static affinity", fleet.ScheduleStatic}, {"work-stealing", fleet.ScheduleWorkStealing}} {
		targets, _ := fleet.SkewedFleet(160, 16, time.Millisecond, 10)
		coord := fleet.NewCoordinator()
		opts := fleet.Options{Shards: 16, Workers: 1, Scheduling: mode.sched}
		coord.Sweep(targets, opts)
		_, st := coord.Sweep(targets, opts)
		walls[mode.name] = st.Wall
		t.AddRow("skewed fleet, "+mode.name, 16, 1, st.Requirements, "-",
			st.Steals, st.LoadImbalance, report.Millis(st.Wall))
	}

	// Homogeneous fleet: dedup executes each distinct (finding, state)
	// fingerprint once per sweep and replays the verdict fleet-wide.
	mk := func() ([]fleet.Target, []*host.Linux) {
		targets, machines := fleet.LinuxFleet(16)
		for i := range targets {
			targets[i] = fleet.WithProbeDelay(targets[i], 50*time.Microsecond)
		}
		return targets, machines
	}
	var dedupRate string
	for _, dedup := range []bool{false, true} {
		targets, _ := mk()
		_, st := fleet.Sweep(targets, fleet.Options{Shards: 4, Workers: 4, Dedup: dedup})
		name, run, rate := "homogeneous fleet, dedup off", st.Requirements, "-"
		if dedup {
			name, run, rate = "homogeneous fleet, dedup on", st.DedupMisses, report.Percent(st.DedupRate())
			dedupRate = rate
		}
		t.AddRow(name, 4, 4, run, rate, st.Steals, st.LoadImbalance,
			report.Millis(st.Wall))
	}

	// Persistent cache: save after the priming sweep, drift one host, then
	// compare the uninterrupted incremental re-sweep with a fresh
	// coordinator resumed from the file. Both must replay 15/16 hosts.
	targets, machines := mk()
	coord := fleet.NewCoordinator()
	coord.Sweep(targets, fleet.Options{Shards: 16, Workers: 4})
	cacheFile, err := os.CreateTemp("", "e14-cache-*.json")
	if err == nil {
		cacheFile.Close()
		defer os.Remove(cacheFile.Name())
		_ = coord.SaveCache(cacheFile.Name())
	}
	host.DriftLinux(machines[9], 3, rand.New(rand.NewSource(seed)))
	incOpts := fleet.Options{Shards: 16, Workers: 4, Incremental: true}
	_, stInc := coord.Sweep(targets, incOpts)
	t.AddRow("incremental re-sweep (1/16 changed)", 16, 4, stInc.CacheMisses,
		report.Percent(stInc.CacheHitRate()), stInc.Steals, stInc.LoadImbalance,
		report.Millis(stInc.Wall))
	resumed := fleet.NewCoordinator()
	if cacheFile != nil {
		_ = resumed.LoadCache(cacheFile.Name())
	}
	_, stRes := resumed.Sweep(targets, incOpts)
	t.AddRow("restart-resume from cache file (1/16 changed)", 16, 4, stRes.CacheMisses,
		report.Percent(stRes.CacheHitRate()), stRes.Steals, stRes.LoadImbalance,
		report.Millis(stRes.Wall))

	gain := 1 - float64(walls["work-stealing"])/float64(walls["static affinity"])
	t.Note = fmt.Sprintf("work stealing cut the skewed-fleet wall by %.0f%%; dedup executed 8 of 128 checks (rate %s); the coordinator resumed from disk matches the uninterrupted hit rate (%s)",
		100*gain, dedupRate, report.Percent(stRes.CacheHitRate()))
	return t
}

// All returns every experiment table in order.
func All(seed int64) []*report.Table {
	return []*report.Table{
		E1StigRoundTrip(seed),
		E2Nalabs(seed),
		E3MonitorLatency(seed),
		E3bLiveVsOffline(seed),
		E3cAdaptivePolling(seed),
		E4ModelCheck(),
		E5TestGen(seed),
		E6Pipeline(seed),
		E6bEconomics(seed),
		E7Tears(seed),
		E7bEngineRobustness(seed),
		E8Extract(),
		E9Liveness(),
		E10ComplianceSeries(seed),
		E11VulnScan(seed),
		E12SecurityLevels(seed),
		E13FleetAudit(seed),
		E14FleetScheduler(seed),
	}
}
