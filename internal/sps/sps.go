// Package sps parses the structured-English specification-pattern
// sentences of the VeriDevOps pattern catalogue — the exact phrasings D2.7
// uses to describe its temporal patterns ("Globally, it is always the case
// that P holds.", "After Q, it is always the case that P holds until R
// holds.", ...) — into tctl.Pattern values. The temporal monitors render
// themselves in this grammar, so monitor descriptions round-trip back into
// checkable patterns: the DSL direction of task T2.1 ("domain specific
// languages to make the formalism more expressive").
package sps

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"veridevops/internal/resa"
	"veridevops/internal/tctl"
	"veridevops/internal/trace"
)

// Sentence templates, most specific first. Placeholders are free-text
// phrases slugged into proposition names.
var templates = []struct {
	name string
	re   *regexp.Regexp
	mk   func(m []string) (tctl.Pattern, error)
}{
	{
		// Globally, it is always the case that if P holds, then S
		// eventually holds within T time units.
		"global-response-timed",
		regexp.MustCompile(`(?i)^globally,\s*it is always the case that if (.+?) holds,?\s*then (.+?) eventually holds within (\d+) time units$`),
		func(m []string) (tctl.Pattern, error) {
			d, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return tctl.Pattern{}, fmt.Errorf("sps: bad bound %q", m[3])
			}
			return tctl.Pattern{
				Behaviour: tctl.Response, Scope: tctl.Globally,
				P: prop(m[1]), S: prop(m[2]), B: tctl.Within(trace.Time(d)),
			}, nil
		},
	},
	{
		// Globally, it is always the case that if P holds then, unless R
		// holds, Q will eventually hold.
		"global-response-until",
		regexp.MustCompile(`(?i)^globally,\s*it is always the case that if (.+?) holds then,?\s*unless (.+?) holds,\s*(.+?) will eventually hold$`),
		func(m []string) (tctl.Pattern, error) {
			return tctl.Pattern{
				Behaviour: tctl.Response, Scope: tctl.Globally,
				P: prop(m[1]), S: tctl.Or{L: prop(m[3]), R: prop(m[2])},
			}, nil
		},
	},
	{
		// After Q, it is always the case that P holds until R holds.
		"after-until-universality",
		regexp.MustCompile(`(?i)^after (.+?),\s*it is always the case that (.+?) holds until (.+?) holds$`),
		func(m []string) (tctl.Pattern, error) {
			return tctl.Pattern{
				Behaviour: tctl.Universality, Scope: tctl.AfterUntil,
				Q: prop(m[1]), P: prop(m[2]), R: prop(m[3]),
			}, nil
		},
	},
	{
		// Between Q and R, it is never the case that P holds.
		"between-absence",
		regexp.MustCompile(`(?i)^between (.+?) and (.+?),\s*it is never the case that (.+?) holds$`),
		func(m []string) (tctl.Pattern, error) {
			return tctl.Pattern{
				Behaviour: tctl.Absence, Scope: tctl.Between,
				Q: prop(m[1]), R: prop(m[2]), P: prop(m[3]),
			}, nil
		},
	},
	{
		// Before R, it is always the case that P holds.
		"before-universality",
		regexp.MustCompile(`(?i)^before (.+?),\s*it is always the case that (.+?) holds$`),
		func(m []string) (tctl.Pattern, error) {
			return tctl.Pattern{
				Behaviour: tctl.Universality, Scope: tctl.Before,
				R: prop(m[1]), P: prop(m[2]),
			}, nil
		},
	},
	{
		// After Q, it is always the case that P holds.
		"after-universality",
		regexp.MustCompile(`(?i)^after (.+?),\s*it is always the case that (.+?) holds$`),
		func(m []string) (tctl.Pattern, error) {
			return tctl.Pattern{
				Behaviour: tctl.Universality, Scope: tctl.After,
				Q: prop(m[1]), P: prop(m[2]),
			}, nil
		},
	},
	{
		// It is always the case that P holds during the first T time units.
		"global-universality-timed",
		regexp.MustCompile(`(?i)^it is always the case that (.+?) holds during the first (\d+) time units$`),
		func(m []string) (tctl.Pattern, error) {
			// The windowed invariant has no direct SPS cell; expose it as
			// bounded absence of the negation (the dual used by the
			// GlobalUniversalityTimed monitor's TCTL rendering).
			d, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				return tctl.Pattern{}, fmt.Errorf("sps: bad bound %q", m[2])
			}
			return tctl.Pattern{
				Behaviour: tctl.Universality, Scope: tctl.Globally,
				P: prop(m[1]), B: tctl.Within(trace.Time(d)),
			}, nil
		},
	},
	{
		// Globally, it is always the case that P holds.
		"global-universality",
		regexp.MustCompile(`(?i)^globally,\s*it is always the case that (.+?) holds$`),
		func(m []string) (tctl.Pattern, error) {
			return tctl.Pattern{Behaviour: tctl.Universality, Scope: tctl.Globally, P: prop(m[1])}, nil
		},
	},
	{
		// Globally, it is never the case that P holds.
		"global-absence",
		regexp.MustCompile(`(?i)^globally,\s*it is never the case that (.+?) holds$`),
		func(m []string) (tctl.Pattern, error) {
			return tctl.Pattern{Behaviour: tctl.Absence, Scope: tctl.Globally, P: prop(m[1])}, nil
		},
	},
	{
		// P eventually holds.
		"global-existence",
		regexp.MustCompile(`(?i)^(?:globally,\s*)?(.+?) eventually holds$`),
		func(m []string) (tctl.Pattern, error) {
			return tctl.Pattern{Behaviour: tctl.Existence, Scope: tctl.Globally, P: prop(m[1])}, nil
		},
	},
}

func prop(phrase string) tctl.Prop {
	return tctl.Prop{Name: resa.Slug(phrase)}
}

// Result is a parsed sentence.
type Result struct {
	Template string
	Pattern  tctl.Pattern
	Formula  tctl.Formula
}

// Parse matches a pattern sentence against the catalogue grammar.
func Parse(sentence string) (Result, error) {
	s := strings.TrimSpace(sentence)
	s = strings.TrimSuffix(s, ".")
	if s == "" {
		return Result{}, fmt.Errorf("sps: empty sentence")
	}
	for _, t := range templates {
		m := t.re.FindStringSubmatch(s)
		if m == nil {
			continue
		}
		p, err := t.mk(m)
		if err != nil {
			return Result{}, err
		}
		f, err := p.Compile()
		if err != nil {
			return Result{}, fmt.Errorf("sps: %s: %w", t.name, err)
		}
		return Result{Template: t.name, Pattern: p, Formula: f}, nil
	}
	return Result{}, fmt.Errorf("sps: sentence matches no catalogue template: %q", sentence)
}
