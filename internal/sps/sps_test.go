package sps

import (
	"strings"
	"testing"

	"veridevops/internal/tctl"
	"veridevops/internal/temporal"
)

func TestParseCatalogueSentences(t *testing.T) {
	cases := []struct {
		sentence  string
		template  string
		behaviour tctl.Behaviour
		scope     tctl.Scope
	}{
		{"Globally, it is always the case that audit_enabled holds.",
			"global-universality", tctl.Universality, tctl.Globally},
		{"Globally, it is never the case that root_login holds.",
			"global-absence", tctl.Absence, tctl.Globally},
		{"scan_complete eventually holds.",
			"global-existence", tctl.Existence, tctl.Globally},
		{"Globally, it is always the case that if intrusion holds, then alarm eventually holds within 50 time units.",
			"global-response-timed", tctl.Response, tctl.Globally},
		{"Globally, it is always the case that if p holds then, unless r holds, q will eventually hold.",
			"global-response-until", tctl.Response, tctl.Globally},
		{"After maintenance, it is always the case that lockdown holds until allclear holds.",
			"after-until-universality", tctl.Universality, tctl.AfterUntil},
		{"After boot, it is always the case that secure_mode holds.",
			"after-universality", tctl.Universality, tctl.After},
		{"Before shutdown, it is always the case that journal_flushed holds.",
			"before-universality", tctl.Universality, tctl.Before},
		{"Between q and r, it is never the case that p holds.",
			"between-absence", tctl.Absence, tctl.Between},
	}
	for _, c := range cases {
		res, err := Parse(c.sentence)
		if err != nil {
			t.Errorf("%q: %v", c.sentence, err)
			continue
		}
		if res.Template != c.template {
			t.Errorf("%q matched %q, want %q", c.sentence, res.Template, c.template)
		}
		if res.Pattern.Behaviour != c.behaviour || res.Pattern.Scope != c.scope {
			t.Errorf("%q -> %v/%v, want %v/%v", c.sentence,
				res.Pattern.Behaviour, res.Pattern.Scope, c.behaviour, c.scope)
		}
		if res.Formula == nil {
			t.Errorf("%q: no formula", c.sentence)
		}
	}
}

func TestParseBound(t *testing.T) {
	res, err := Parse("Globally, it is always the case that if req holds, then ack eventually holds within 123 time units.")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pattern.B.Valid || res.Pattern.B.D != 123 {
		t.Errorf("bound = %+v", res.Pattern.B)
	}
	if res.Formula.String() != "req -->[<=123] ack" {
		t.Errorf("formula = %q", res.Formula)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"This is not a pattern sentence.",
		"Globally, something undefined happens.",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// The temporal monitors' String() output parses back into equivalent
// patterns: the catalogue's textual notation is executable.
func TestMonitorDescriptionsRoundTrip(t *testing.T) {
	clk := temporal.NewSimClock()
	opt := temporal.Options{Clock: clk, Period: 10, Boundary: 10}
	probe := func(n string) temporal.Probe {
		return temporal.BoolProbe(n, func() bool { return true })
	}
	cases := []struct {
		monitor   temporal.Monitor
		behaviour tctl.Behaviour
		scope     tctl.Scope
	}{
		{temporal.NewGlobalUniversality(probe("p"), opt), tctl.Universality, tctl.Globally},
		{temporal.NewEventually(probe("p"), opt), tctl.Existence, tctl.Globally},
		{temporal.NewGlobalResponseTimed(probe("p"), probe("s"), 50, opt), tctl.Response, tctl.Globally},
		{temporal.NewGlobalResponseUntil(probe("p"), probe("q"), probe("r"), opt), tctl.Response, tctl.Globally},
		{temporal.NewAfterUntilUniversality(probe("q"), probe("p"), probe("r"), opt), tctl.Universality, tctl.AfterUntil},
		{temporal.NewGlobalUniversalityTimed(probe("p"), 50, opt), tctl.Universality, tctl.Globally},
	}
	for _, c := range cases {
		desc := c.monitor.String()
		res, err := Parse(desc)
		if err != nil {
			t.Errorf("monitor description %q does not parse: %v", desc, err)
			continue
		}
		if res.Pattern.Behaviour != c.behaviour || res.Pattern.Scope != c.scope {
			t.Errorf("%q -> %v/%v, want %v/%v", desc,
				res.Pattern.Behaviour, res.Pattern.Scope, c.behaviour, c.scope)
		}
	}
}

func TestSlugging(t *testing.T) {
	res, err := Parse("Globally, it is always the case that the audit service is running holds.")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Formula.String(), "the_audit_service_is_running") {
		t.Errorf("formula = %q", res.Formula)
	}
}
