package automata

import "fmt"

// Observer-automata templates, following the PSP-UPPAAL catalogue scheme
// referenced by VeriDevOps D2.7: each specification pattern becomes an
// automaton that eavesdrops on plant events (broadcast labels) and enters a
// distinguished error location exactly when the pattern is violated.
// Verifying the pattern then amounts to checking A[] !err on the plant ||
// observer composition.
//
// Events are occurrence-based: a label p means "event p happened". For
// state-based propositions the plant model is instrumented to emit an event
// on every relevant change (the convention PROPAS uses when generating
// plant stubs from requirements).

// ErrLoc is the conventional name of observer error locations.
const ErrLoc = "err"

// AbsenceObserver observes "globally, event p never occurs".
func AbsenceObserver(p string) *Automaton {
	a := NewObserver("obs_absence_" + p)
	a.AddLocation(Location{Name: "idle"})
	a.AddLocation(Location{Name: ErrLoc, Error: true})
	a.AddEdge(Edge{From: "idle", To: ErrLoc, Label: p})
	return a
}

// ExistenceBoundedObserver observes "event p occurs within d time units of
// system start". The deadline makes the liveness obligation checkable as
// reachability, the standard PROPAS encoding of existence.
func ExistenceBoundedObserver(p string, d int64) *Automaton {
	x := fmt.Sprintf("x_obs_ex_%s", p)
	a := NewObserver("obs_existence_" + p)
	a.AddLocation(Location{Name: "waiting"})
	a.AddLocation(Location{Name: "done"})
	a.AddLocation(Location{Name: ErrLoc, Error: true})
	a.AddEdge(Edge{From: "waiting", To: "done", Label: p})
	a.AddEdge(Edge{From: "waiting", To: ErrLoc, Guard: Guard{{Clock: x, Op: OpGt, Bound: d}}})
	// Once satisfied, further p events are irrelevant.
	a.AddEdge(Edge{From: "done", To: "done", Label: p})
	return a
}

// ResponseTimedObserver observes "globally, every event p is followed by
// event s within d time units" (GlobalResponseTimed of D2.7).
func ResponseTimedObserver(p, s string, d int64) *Automaton {
	x := fmt.Sprintf("x_obs_resp_%s_%s", p, s)
	a := NewObserver(fmt.Sprintf("obs_response_%s_%s", p, s))
	a.AddLocation(Location{Name: "idle"})
	a.AddLocation(Location{Name: "waiting"})
	a.AddLocation(Location{Name: ErrLoc, Error: true})
	a.AddEdge(Edge{From: "idle", To: "waiting", Label: p, Resets: []string{x}})
	a.AddEdge(Edge{From: "idle", To: "idle", Label: s})
	a.AddEdge(Edge{From: "waiting", To: "idle", Label: s, Guard: Guard{{Clock: x, Op: OpLe, Bound: d}}})
	a.AddEdge(Edge{From: "waiting", To: ErrLoc, Guard: Guard{{Clock: x, Op: OpGt, Bound: d}}})
	// A new trigger while waiting keeps the earliest deadline (no reset).
	a.AddEdge(Edge{From: "waiting", To: "waiting", Label: p})
	return a
}

// PrecedenceObserver observes "event p is always preceded by event s".
func PrecedenceObserver(p, s string) *Automaton {
	a := NewObserver(fmt.Sprintf("obs_precedence_%s_%s", p, s))
	a.AddLocation(Location{Name: "unauth"})
	a.AddLocation(Location{Name: "auth"})
	a.AddLocation(Location{Name: ErrLoc, Error: true})
	a.AddEdge(Edge{From: "unauth", To: "auth", Label: s})
	a.AddEdge(Edge{From: "unauth", To: ErrLoc, Label: p})
	a.AddEdge(Edge{From: "auth", To: "auth", Label: p})
	a.AddEdge(Edge{From: "auth", To: "auth", Label: s})
	return a
}

// UniversalityObserver observes "globally p holds", where the plant is
// instrumented to emit pViol whenever the proposition p turns false; the
// observer is then the absence observer of the violation event.
func UniversalityObserver(pViol string) *Automaton {
	a := AbsenceObserver(pViol)
	a.Name = "obs_universality_" + pViol
	return a
}

// AfterUntilAbsenceObserver observes "after event q and until event r,
// event p never occurs" — the scoped absence pattern.
func AfterUntilAbsenceObserver(q, p, r string) *Automaton {
	a := NewObserver(fmt.Sprintf("obs_afteruntil_%s_%s_%s", q, p, r))
	a.AddLocation(Location{Name: "idle"})
	a.AddLocation(Location{Name: "armed"})
	a.AddLocation(Location{Name: ErrLoc, Error: true})
	a.AddEdge(Edge{From: "idle", To: "armed", Label: q})
	a.AddEdge(Edge{From: "idle", To: "idle", Label: p})
	a.AddEdge(Edge{From: "idle", To: "idle", Label: r})
	a.AddEdge(Edge{From: "armed", To: "idle", Label: r})
	a.AddEdge(Edge{From: "armed", To: "armed", Label: q})
	a.AddEdge(Edge{From: "armed", To: ErrLoc, Label: p})
	return a
}

// MinSeparationObserver observes "two consecutive occurrences of event p
// are at least d time units apart" — a rate-limiting requirement used by
// the protection experiments.
func MinSeparationObserver(p string, d int64) *Automaton {
	x := fmt.Sprintf("x_obs_sep_%s", p)
	a := NewObserver("obs_minsep_" + p)
	a.AddLocation(Location{Name: "first"})
	a.AddLocation(Location{Name: "spaced"})
	a.AddLocation(Location{Name: ErrLoc, Error: true})
	a.AddEdge(Edge{From: "first", To: "spaced", Label: p, Resets: []string{x}})
	a.AddEdge(Edge{From: "spaced", To: "spaced", Label: p, Guard: Guard{{Clock: x, Op: OpGe, Bound: d}}, Resets: []string{x}})
	a.AddEdge(Edge{From: "spaced", To: ErrLoc, Label: p, Guard: Guard{{Clock: x, Op: OpLt, Bound: d}}})
	return a
}
