package automata

import (
	"fmt"
	"math/rand"
)

// Plant models for verification experiments. PROPAS checks pattern
// observers against a model of the system under specification; the
// benchmark harness uses these generated plants as stand-ins for the
// industrial case-study models.

// CyclicPlant builds a ring of n locations where the i-th step emits
// labels[i%len(labels)] exactly every period time units (invariant x <=
// period, guard x >= period, reset on every step). Response latencies in
// this plant are exact multiples of period, giving the E4 benchmark a
// ground truth: event j follows event i after ((j-i) mod n) * period time
// units.
func CyclicPlant(name string, n int, labels []string, period int64) *Automaton {
	if n < 1 || len(labels) == 0 || period < 1 {
		panic("automata: CyclicPlant requires n>=1, labels, period>=1")
	}
	x := "x_" + name
	a := New(name)
	for i := 0; i < n; i++ {
		a.AddLocation(Location{
			Name:      fmt.Sprintf("l%d", i),
			Invariant: Guard{{Clock: x, Op: OpLe, Bound: period}},
		})
	}
	for i := 0; i < n; i++ {
		a.AddEdge(Edge{
			From:   fmt.Sprintf("l%d", i),
			To:     fmt.Sprintf("l%d", (i+1)%n),
			Label:  labels[i%len(labels)],
			Guard:  Guard{{Clock: x, Op: OpGe, Bound: period}},
			Resets: []string{x},
		})
	}
	return a
}

// RandomPlant builds a connected random automaton over n locations whose
// edges emit labels drawn from the given set, with random dwell-time
// guards up to maxDwell. A spanning ring keeps every location reachable;
// extra chords add branching. Deterministic in the seed of rng.
func RandomPlant(name string, n int, labels []string, maxDwell int64, extraEdges int, rng *rand.Rand) *Automaton {
	if n < 1 || len(labels) == 0 || maxDwell < 1 {
		panic("automata: RandomPlant requires n>=1, labels, maxDwell>=1")
	}
	x := "x_" + name
	a := New(name)
	for i := 0; i < n; i++ {
		a.AddLocation(Location{
			Name:      fmt.Sprintf("l%d", i),
			Invariant: Guard{{Clock: x, Op: OpLe, Bound: maxDwell}},
		})
	}
	edge := func(from, to int) {
		dwell := 1 + rng.Int63n(maxDwell)
		a.AddEdge(Edge{
			From:   fmt.Sprintf("l%d", from),
			To:     fmt.Sprintf("l%d", to),
			Label:  labels[rng.Intn(len(labels))],
			Guard:  Guard{{Clock: x, Op: OpGe, Bound: dwell}},
			Resets: []string{x},
		})
	}
	for i := 0; i < n; i++ {
		edge(i, (i+1)%n)
	}
	for i := 0; i < extraEdges; i++ {
		edge(rng.Intn(n), rng.Intn(n))
	}
	return a
}
