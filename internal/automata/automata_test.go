package automata

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBuilderAndValidate(t *testing.T) {
	a := New("m")
	a.AddLocation(Location{Name: "s0"})
	a.AddLocation(Location{Name: "s1"})
	a.AddEdge(Edge{From: "s0", To: "s1", Label: "go"})
	if a.Initial != "s0" {
		t.Errorf("Initial = %q, want first location", a.Initial)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	a.SetInitial("s1")
	if a.Initial != "s1" {
		t.Error("SetInitial did not take effect")
	}
}

func TestValidateErrors(t *testing.T) {
	empty := New("e")
	if empty.Validate() == nil {
		t.Error("empty automaton must not validate")
	}

	a := New("a")
	a.AddLocation(Location{Name: "s0"})
	a.AddEdge(Edge{From: "s0", To: "ghost"})
	if a.Validate() == nil {
		t.Error("edge to undefined location must not validate")
	}

	b := New("b")
	b.AddLocation(Location{Name: "s0"})
	b.AddEdge(Edge{From: "ghost", To: "s0"})
	if b.Validate() == nil {
		t.Error("edge from undefined location must not validate")
	}

	c := New("c")
	c.AddLocation(Location{Name: "s0"})
	c.SetInitial("ghost")
	if c.Validate() == nil {
		t.Error("undefined initial location must not validate")
	}
}

func TestDuplicateLocationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate location must panic")
		}
	}()
	New("a").AddLocation(Location{Name: "s"}).AddLocation(Location{Name: "s"})
}

func TestClocksAndLabels(t *testing.T) {
	a := New("m")
	a.AddLocation(Location{Name: "s0", Invariant: Guard{{Clock: "z", Op: OpLe, Bound: 5}}})
	a.AddLocation(Location{Name: "s1"})
	a.AddEdge(Edge{From: "s0", To: "s1", Label: "go",
		Guard:  Guard{{Clock: "x", Op: OpGe, Bound: 1}},
		Resets: []string{"y"}})
	a.AddEdge(Edge{From: "s1", To: "s0"}) // internal

	clocks := a.Clocks()
	if len(clocks) != 3 || clocks[0] != "x" || clocks[1] != "y" || clocks[2] != "z" {
		t.Errorf("Clocks = %v", clocks)
	}
	labels := a.Labels()
	if len(labels) != 1 || labels[0] != "go" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestNetworkValidation(t *testing.T) {
	a := New("a")
	a.AddLocation(Location{Name: "s"})
	b := New("a") // duplicate name
	b.AddLocation(Location{Name: "s"})
	if _, err := NewNetwork(a, b); err == nil {
		t.Error("duplicate component names must be rejected")
	}
	c := New("c")
	c.AddLocation(Location{Name: "s"})
	n, err := NewNetwork(a, c)
	if err != nil || len(n.Automata) != 2 {
		t.Fatalf("NewNetwork: %v", err)
	}
}

func TestMustNetworkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNetwork should panic on invalid input")
		}
	}()
	MustNetwork(New("empty"))
}

func TestNetworkMaxConstant(t *testing.T) {
	a := New("a")
	a.AddLocation(Location{Name: "s", Invariant: Guard{{Clock: "x", Op: OpLe, Bound: 7}}})
	a.AddEdge(Edge{From: "s", To: "s", Guard: Guard{{Clock: "x", Op: OpGe, Bound: 30}}})
	n := MustNetwork(a)
	if n.MaxConstant() != 30 {
		t.Errorf("MaxConstant = %d, want 30", n.MaxConstant())
	}
}

func TestGuardAndEdgeStrings(t *testing.T) {
	var g Guard
	if g.String() != "true" {
		t.Errorf("empty guard prints %q", g.String())
	}
	g = Guard{{Clock: "x", Op: OpLe, Bound: 3}, {Clock: "y", Op: OpGt, Bound: 1}}
	if g.String() != "x <= 3 && y > 1" {
		t.Errorf("guard prints %q", g.String())
	}
	e := Edge{From: "a", To: "b", Label: "", Guard: g}
	if !strings.Contains(e.String(), "tau") {
		t.Errorf("internal edge should print tau: %q", e.String())
	}
	ops := map[Op]string{OpLt: "<", OpLe: "<=", OpGe: ">=", OpGt: ">", OpEq: "==", Op(9): "?"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op(%d) = %q, want %q", int(op), op.String(), want)
		}
	}
}

func TestCyclicPlantStructure(t *testing.T) {
	p := CyclicPlant("plant", 4, []string{"a", "b"}, 10)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Locations) != 4 || len(p.Edges) != 4 {
		t.Errorf("got %d locations, %d edges", len(p.Locations), len(p.Edges))
	}
	labels := p.Labels()
	if len(labels) != 2 {
		t.Errorf("Labels = %v", labels)
	}
	// Every edge resets the plant clock and is guarded at the period.
	for _, e := range p.Edges {
		if len(e.Resets) != 1 || len(e.Guard) != 1 || e.Guard[0].Bound != 10 {
			t.Errorf("edge %v not period-shaped", e)
		}
	}
}

func TestCyclicPlantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CyclicPlant must panic on bad arguments")
		}
	}()
	CyclicPlant("p", 0, []string{"a"}, 1)
}

func TestRandomPlantDeterminism(t *testing.T) {
	p1 := RandomPlant("p", 6, []string{"a", "b", "c"}, 5, 4, rand.New(rand.NewSource(9)))
	p2 := RandomPlant("p", 6, []string{"a", "b", "c"}, 5, 4, rand.New(rand.NewSource(9)))
	if err := p1.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p1.Edges) != len(p2.Edges) {
		t.Fatal("same seed must give same plant")
	}
	for i := range p1.Edges {
		if p1.Edges[i].String() != p2.Edges[i].String() {
			t.Fatalf("edge %d differs: %v vs %v", i, p1.Edges[i], p2.Edges[i])
		}
	}
	if len(p1.Edges) != 6+4 {
		t.Errorf("edges = %d, want ring+extra = 10", len(p1.Edges))
	}
}

func TestObserverTemplatesValidate(t *testing.T) {
	obs := []*Automaton{
		AbsenceObserver("p"),
		ExistenceBoundedObserver("p", 10),
		ResponseTimedObserver("p", "s", 10),
		PrecedenceObserver("p", "s"),
		UniversalityObserver("p_viol"),
		AfterUntilAbsenceObserver("q", "p", "r"),
		MinSeparationObserver("p", 5),
	}
	for _, o := range obs {
		if err := o.Validate(); err != nil {
			t.Errorf("%s: %v", o.Name, err)
		}
		hasErr := false
		for _, l := range o.Locations {
			if l.Error {
				if l.Name != ErrLoc {
					t.Errorf("%s: error location named %q, want %q", o.Name, l.Name, ErrLoc)
				}
				hasErr = true
			}
		}
		if !hasErr {
			t.Errorf("%s: observer must have an error location", o.Name)
		}
	}
}
