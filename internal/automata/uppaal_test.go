package automata

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func TestWriteUppaalXML(t *testing.T) {
	plant := CyclicPlant("plant", 3, []string{"a", "b", "c"}, 7)
	obs := ResponseTimedObserver("a", "c", 14)
	net := MustNetwork(plant, obs)

	var buf bytes.Buffer
	if err := WriteUppaalXML(&buf, net); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("output is not well-formed XML: %v\n%s", err, out)
		}
	}

	for _, want := range []string{
		"<nta>",
		"clock x_plant;",
		"broadcast chan a;",
		"broadcast chan c;",
		"<name>plant</name>",
		"<name>obs_response_a_c</name>",
		`<label kind="synchronisation">a!</label>`, // plant emits
		`<label kind="synchronisation">a?</label>`, // observer receives
		`<label kind="invariant">x_plant &lt;= 7</label>`,
		"x_obs_resp_a_c = 0",
		"system P_plant, P_obs_response_a_c;",
		"A[] not (P_obs_response_a_c.err)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("UPPAAL export missing %q", want)
		}
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"x_plant":   "x_plant",
		"a-b c":     "a_b_c",
		"9lives":    "_9lives",
		"":          "_",
		"ok123":     "ok123",
		"obs.err!?": "obs_err__",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGuardExprEscaping(t *testing.T) {
	g := Guard{{Clock: "x", Op: OpLt, Bound: 3}, {Clock: "y", Op: OpGe, Bound: 1}}
	got := guardExpr(g)
	if got != "x &lt; 3 &amp;&amp; y &gt;= 1" {
		t.Errorf("guardExpr = %q", got)
	}
}
