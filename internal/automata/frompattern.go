package automata

import (
	"fmt"

	"veridevops/internal/tctl"
)

// FromPattern compiles a specification pattern (internal/tctl) into its
// observer automaton, completing the PROPAS chain: natural language ->
// pattern -> {TCTL formula, observer automaton}. The pattern propositions
// must be plain atoms (tctl.Prop); their names become the observed event
// labels.
//
// Observability restrictions, inherent to checking liveness as
// reachability: global existence and response require a time bound, and
// universality is observed through the complementary violation event
// "<p>_viol" which the plant model must emit whenever the proposition
// turns false.
func FromPattern(p tctl.Pattern) (*Automaton, error) {
	name := func(f tctl.Formula, role string) (string, error) {
		if f == nil {
			return "", fmt.Errorf("automata: pattern is missing %s", role)
		}
		prop, ok := f.(tctl.Prop)
		if !ok {
			return "", fmt.Errorf("automata: %s must be a plain proposition, got %q", role, f)
		}
		return prop.Name, nil
	}

	switch p.Scope {
	case tctl.Globally:
		pn, err := name(p.P, "P")
		if err != nil {
			return nil, err
		}
		switch p.Behaviour {
		case tctl.Absence:
			return AbsenceObserver(pn), nil
		case tctl.Universality:
			return UniversalityObserver(pn + "_viol"), nil
		case tctl.Existence:
			if !p.B.Valid {
				return nil, fmt.Errorf("automata: unbounded existence is not checkable as reachability; set a bound")
			}
			return ExistenceBoundedObserver(pn, p.B.D), nil
		case tctl.Response:
			sn, err := name(p.S, "S")
			if err != nil {
				return nil, err
			}
			if !p.B.Valid {
				return nil, fmt.Errorf("automata: unbounded response is not checkable as reachability; set a bound")
			}
			return ResponseTimedObserver(pn, sn, p.B.D), nil
		case tctl.Precedence:
			sn, err := name(p.S, "S")
			if err != nil {
				return nil, err
			}
			return PrecedenceObserver(pn, sn), nil
		}
	case tctl.AfterUntil:
		qn, err := name(p.Q, "Q")
		if err != nil {
			return nil, err
		}
		rn, err := name(p.R, "R")
		if err != nil {
			return nil, err
		}
		switch p.Behaviour {
		case tctl.Absence:
			pn, err := name(p.P, "P")
			if err != nil {
				return nil, err
			}
			return AfterUntilAbsenceObserver(qn, pn, rn), nil
		case tctl.Universality:
			pn, err := name(p.P, "P")
			if err != nil {
				return nil, err
			}
			// Universality of p == absence of its violation event.
			return AfterUntilAbsenceObserver(qn, pn+"_viol", rn), nil
		}
	}
	return nil, fmt.Errorf("automata: no observer template for %s/%s", p.Behaviour, p.Scope)
}
