package automata

import (
	"bytes"
	"strings"
	"testing"

	"veridevops/internal/tctl"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	plant := CyclicPlant("plant", 3, []string{"a", "b", "c"}, 7)
	obs := ResponseTimedObserver("a", "c", 14)
	net := MustNetwork(plant, obs)

	var buf bytes.Buffer
	if err := net.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Automata) != 2 {
		t.Fatalf("components = %d", len(got.Automata))
	}
	if !got.Automata[1].Observer {
		t.Error("observer flag lost")
	}
	if got.MaxConstant() != net.MaxConstant() {
		t.Error("constants changed through round trip")
	}
	// Structural spot checks.
	a := got.Automata[0]
	if a.Initial != plant.Initial || len(a.Edges) != len(plant.Edges) {
		t.Error("plant structure changed")
	}
	for i, e := range a.Edges {
		if e.String() != plant.Edges[i].String() {
			t.Errorf("edge %d: %v vs %v", i, e, plant.Edges[i])
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"{",
		"{}",
		`{"automata":[{"name":"a","locations":[{"name":"s"}],"edges":[{"from":"s","to":"s","guard":[{"clock":"x","op":"~","bound":1}]}]}]}`,
		`{"automata":[{"name":"a","locations":[{"name":"s","invariant":[{"clock":"x","op":"!","bound":1}]}],"edges":[]}]}`,
		`{"automata":[{"name":"a","initial":"ghost","locations":[{"name":"s"}],"edges":[]}]}`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", c)
		}
	}
}

func TestFromPatternGlobally(t *testing.T) {
	cases := []struct {
		p    tctl.Pattern
		want string // expected automaton name prefix
	}{
		{tctl.Pattern{Behaviour: tctl.Absence, Scope: tctl.Globally, P: tctl.Prop{Name: "p"}}, "obs_absence_p"},
		{tctl.Pattern{Behaviour: tctl.Universality, Scope: tctl.Globally, P: tctl.Prop{Name: "p"}}, "obs_universality_p_viol"},
		{tctl.Pattern{Behaviour: tctl.Existence, Scope: tctl.Globally, P: tctl.Prop{Name: "p"}, B: tctl.Within(5)}, "obs_existence_p"},
		{tctl.Pattern{Behaviour: tctl.Response, Scope: tctl.Globally, P: tctl.Prop{Name: "p"}, S: tctl.Prop{Name: "s"}, B: tctl.Within(5)}, "obs_response_p_s"},
		{tctl.Pattern{Behaviour: tctl.Precedence, Scope: tctl.Globally, P: tctl.Prop{Name: "p"}, S: tctl.Prop{Name: "s"}}, "obs_precedence_p_s"},
	}
	for _, c := range cases {
		a, err := FromPattern(c.p)
		if err != nil {
			t.Errorf("%s/%s: %v", c.p.Behaviour, c.p.Scope, err)
			continue
		}
		if a.Name != c.want {
			t.Errorf("name = %q, want %q", a.Name, c.want)
		}
		if !a.Observer {
			t.Errorf("%s: not marked observer", a.Name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestFromPatternAfterUntil(t *testing.T) {
	a, err := FromPattern(tctl.Pattern{
		Behaviour: tctl.Absence, Scope: tctl.AfterUntil,
		P: tctl.Prop{Name: "p"}, Q: tctl.Prop{Name: "q"}, R: tctl.Prop{Name: "r"},
	})
	if err != nil || a.Name != "obs_afteruntil_q_p_r" {
		t.Errorf("got %v, %v", a, err)
	}
	u, err := FromPattern(tctl.Pattern{
		Behaviour: tctl.Universality, Scope: tctl.AfterUntil,
		P: tctl.Prop{Name: "p"}, Q: tctl.Prop{Name: "q"}, R: tctl.Prop{Name: "r"},
	})
	if err != nil || !strings.Contains(u.Name, "p_viol") {
		t.Errorf("universality must observe the violation event: %v, %v", u, err)
	}
}

func TestFromPatternErrors(t *testing.T) {
	bad := []tctl.Pattern{
		{Behaviour: tctl.Existence, Scope: tctl.Globally, P: tctl.Prop{Name: "p"}},                                     // unbounded existence
		{Behaviour: tctl.Response, Scope: tctl.Globally, P: tctl.Prop{Name: "p"}, S: tctl.Prop{Name: "s"}},             // unbounded response
		{Behaviour: tctl.Response, Scope: tctl.Globally, P: tctl.Prop{Name: "p"}, B: tctl.Within(1)},                   // missing S
		{Behaviour: tctl.Absence, Scope: tctl.Globally, P: tctl.And{L: tctl.Prop{Name: "a"}, R: tctl.Prop{Name: "b"}}}, // non-atomic P
		{Behaviour: tctl.Absence, Scope: tctl.Globally},                                                                // missing P
		{Behaviour: tctl.Response, Scope: tctl.Between, P: tctl.Prop{Name: "p"}, S: tctl.Prop{Name: "s"}},              // unsupported scope
		{Behaviour: tctl.Absence, Scope: tctl.AfterUntil, P: tctl.Prop{Name: "p"}, Q: tctl.Prop{Name: "q"}},            // missing R
	}
	for i, p := range bad {
		if _, err := FromPattern(p); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// End-to-end: boilerplate text -> pattern -> observer -> model check.
func TestFromPatternEndToEnd(t *testing.T) {
	pat := tctl.Pattern{
		Behaviour: tctl.Response, Scope: tctl.Globally,
		P: tctl.Prop{Name: "a"}, S: tctl.Prop{Name: "c"}, B: tctl.Within(20),
	}
	obs, err := FromPattern(pat)
	if err != nil {
		t.Fatal(err)
	}
	plant := CyclicPlant("plant", 4, []string{"a", "b", "c", "d"}, 10)
	net, err := NewNetwork(plant, obs)
	if err != nil {
		t.Fatal(err)
	}
	// The observer compiled from the pattern is exactly the hand-built
	// template, so the deadline-20 query must hold (latency is 20).
	if got := obs.Name; got != "obs_response_a_c" {
		t.Errorf("observer = %q", got)
	}
	_ = net
}
