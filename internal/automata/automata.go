// Package automata implements timed automata networks in the style consumed
// by the PROPAS tool of VeriDevOps: automata with real-valued clocks,
// diagonal-free guards, location invariants and broadcast-event
// synchronisation, plus the observer-automata templates of the PSP-UPPAAL
// catalogue. Verification of a pattern is reduced to reachability of the
// observer's error location in the plant-observer composition, decided by
// the zone-based checker in internal/mc.
package automata

import (
	"fmt"
	"sort"
)

// Op is a comparison operator in a clock constraint.
type Op int

// Clock-constraint operators.
const (
	OpLt Op = iota // x <  bound
	OpLe           // x <= bound
	OpGe           // x >= bound
	OpGt           // x >  bound
	OpEq           // x == bound
)

func (o Op) String() string {
	switch o {
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	case OpGt:
		return ">"
	case OpEq:
		return "=="
	default:
		return "?"
	}
}

// Constraint is an atomic diagonal-free clock constraint "clock op bound".
type Constraint struct {
	Clock string
	Op    Op
	Bound int64
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %d", c.Clock, c.Op, c.Bound)
}

// Guard is a conjunction of clock constraints; the empty guard is true.
type Guard []Constraint

func (g Guard) String() string {
	if len(g) == 0 {
		return "true"
	}
	s := ""
	for i, c := range g {
		if i > 0 {
			s += " && "
		}
		s += c.String()
	}
	return s
}

// Edge is a transition between locations. Label "" is an internal step; a
// non-empty label synchronises with every other automaton in the network
// that can receive it (broadcast semantics, the scheme used by observer
// automata that eavesdrop on plant events).
type Edge struct {
	From, To string
	Label    string
	Guard    Guard
	Resets   []string
}

func (e Edge) String() string {
	lbl := e.Label
	if lbl == "" {
		lbl = "tau"
	}
	return fmt.Sprintf("%s --%s[%s]--> %s", e.From, lbl, e.Guard, e.To)
}

// Location is a named control state with an optional invariant. Error marks
// observer verdict locations.
type Location struct {
	Name      string
	Invariant Guard
	Error     bool
}

// Automaton is one component of a network.
type Automaton struct {
	Name      string
	Locations []Location
	Edges     []Edge
	Initial   string
	// Observer marks eavesdropping components: their labeled edges are
	// receive-only and never emit. Pattern observers set this so that they
	// cannot spontaneously produce the plant events they watch.
	Observer bool

	locIndex map[string]int
}

// New returns an empty automaton with the given name.
func New(name string) *Automaton {
	return &Automaton{Name: name, locIndex: map[string]int{}}
}

// NewObserver returns an empty receive-only (eavesdropping) automaton.
func NewObserver(name string) *Automaton {
	a := New(name)
	a.Observer = true
	return a
}

// AddLocation appends a location and returns the automaton for chaining.
// Adding a duplicate name panics: automata are built by static construction
// code where that is a programming error.
func (a *Automaton) AddLocation(loc Location) *Automaton {
	if _, dup := a.locIndex[loc.Name]; dup {
		panic(fmt.Sprintf("automata: duplicate location %q in %s", loc.Name, a.Name))
	}
	a.locIndex[loc.Name] = len(a.Locations)
	a.Locations = append(a.Locations, loc)
	if a.Initial == "" {
		a.Initial = loc.Name
	}
	return a
}

// AddEdge appends an edge.
func (a *Automaton) AddEdge(e Edge) *Automaton {
	a.Edges = append(a.Edges, e)
	return a
}

// SetInitial overrides the initial location (default: first added).
func (a *Automaton) SetInitial(name string) *Automaton {
	a.Initial = name
	return a
}

// LocIndex returns the index of the named location.
func (a *Automaton) LocIndex(name string) (int, bool) {
	i, ok := a.locIndex[name]
	return i, ok
}

// Validate checks referential integrity: edges connect existing locations
// and the initial location exists.
func (a *Automaton) Validate() error {
	if len(a.Locations) == 0 {
		return fmt.Errorf("automata: %s has no locations", a.Name)
	}
	if _, ok := a.locIndex[a.Initial]; !ok {
		return fmt.Errorf("automata: %s initial location %q undefined", a.Name, a.Initial)
	}
	for _, e := range a.Edges {
		if _, ok := a.locIndex[e.From]; !ok {
			return fmt.Errorf("automata: %s edge from undefined location %q", a.Name, e.From)
		}
		if _, ok := a.locIndex[e.To]; !ok {
			return fmt.Errorf("automata: %s edge to undefined location %q", a.Name, e.To)
		}
	}
	return nil
}

// Clocks returns the sorted set of clock names used by the automaton's
// guards, invariants and resets.
func (a *Automaton) Clocks() []string {
	set := map[string]struct{}{}
	add := func(g Guard) {
		for _, c := range g {
			set[c.Clock] = struct{}{}
		}
	}
	for _, l := range a.Locations {
		add(l.Invariant)
	}
	for _, e := range a.Edges {
		add(e.Guard)
		for _, r := range e.Resets {
			set[r] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Labels returns the sorted set of non-internal edge labels.
func (a *Automaton) Labels() []string {
	set := map[string]struct{}{}
	for _, e := range a.Edges {
		if e.Label != "" {
			set[e.Label] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Network is a parallel composition of automata with broadcast label
// synchronisation.
type Network struct {
	Automata []*Automaton
}

// NewNetwork composes the automata. Component names must be unique so
// analysis output is unambiguous.
func NewNetwork(as ...*Automaton) (*Network, error) {
	seen := map[string]struct{}{}
	for _, a := range as {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := seen[a.Name]; dup {
			return nil, fmt.Errorf("automata: duplicate component name %q", a.Name)
		}
		seen[a.Name] = struct{}{}
	}
	return &Network{Automata: as}, nil
}

// MustNetwork is NewNetwork that panics on error.
func MustNetwork(as ...*Automaton) *Network {
	n, err := NewNetwork(as...)
	if err != nil {
		panic(err)
	}
	return n
}

// Clocks returns the union of component clocks, sorted, with component
// prefixes kept as-is (clock names are global to the network).
func (n *Network) Clocks() []string {
	set := map[string]struct{}{}
	for _, a := range n.Automata {
		for _, c := range a.Clocks() {
			set[c] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MaxConstant returns the largest constant appearing in any guard or
// invariant, the k used for zone extrapolation.
func (n *Network) MaxConstant() int64 {
	var k int64
	scan := func(g Guard) {
		for _, c := range g {
			if c.Bound > k {
				k = c.Bound
			}
		}
	}
	for _, a := range n.Automata {
		for _, l := range a.Locations {
			scan(l.Invariant)
		}
		for _, e := range a.Edges {
			scan(e.Guard)
		}
	}
	return k
}
