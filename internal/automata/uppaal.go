package automata

import (
	"fmt"
	"io"
	"strings"
)

// WriteUppaalXML exports the network as an UPPAAL 4.x system description —
// the artefact PROPAS hands to UPPAAL for verification. Labels become
// broadcast channels (emitters send `label!`, observers receive `label?`),
// clocks and channels are declared globally, and observer error locations
// are named so the accompanying query is simply
//
//	A[] not (obs.err)
//
// The exporter covers the subset of UPPAAL this package models (diagonal-
// free guards, broadcast sync, no integer variables).
func WriteUppaalXML(w io.Writer, n *Network) error {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="utf-8"?>` + "\n")
	b.WriteString("<nta>\n")

	// Global declarations: clocks and broadcast channels.
	b.WriteString("  <declaration>\n")
	for _, c := range n.Clocks() {
		fmt.Fprintf(&b, "    clock %s;\n", sanitizeIdent(c))
	}
	chans := map[string]struct{}{}
	for _, a := range n.Automata {
		for _, l := range a.Labels() {
			chans[l] = struct{}{}
		}
	}
	for _, l := range sortedKeys(chans) {
		fmt.Fprintf(&b, "    broadcast chan %s;\n", sanitizeIdent(l))
	}
	b.WriteString("  </declaration>\n")

	for _, a := range n.Automata {
		fmt.Fprintf(&b, "  <template>\n    <name>%s</name>\n", sanitizeIdent(a.Name))
		for i, loc := range a.Locations {
			fmt.Fprintf(&b, "    <location id=\"id%d\"><name>%s</name>", i, sanitizeIdent(loc.Name))
			if len(loc.Invariant) > 0 {
				fmt.Fprintf(&b, "<label kind=\"invariant\">%s</label>", guardExpr(loc.Invariant))
			}
			b.WriteString("</location>\n")
		}
		init, _ := a.LocIndex(a.Initial)
		fmt.Fprintf(&b, "    <init ref=\"id%d\"/>\n", init)
		for _, e := range a.Edges {
			from, _ := a.LocIndex(e.From)
			to, _ := a.LocIndex(e.To)
			fmt.Fprintf(&b, "    <transition><source ref=\"id%d\"/><target ref=\"id%d\"/>", from, to)
			if e.Label != "" {
				dir := "!"
				if a.Observer {
					dir = "?"
				}
				fmt.Fprintf(&b, "<label kind=\"synchronisation\">%s%s</label>", sanitizeIdent(e.Label), dir)
			}
			if len(e.Guard) > 0 {
				fmt.Fprintf(&b, "<label kind=\"guard\">%s</label>", guardExpr(e.Guard))
			}
			if len(e.Resets) > 0 {
				var rs []string
				for _, r := range e.Resets {
					rs = append(rs, sanitizeIdent(r)+" = 0")
				}
				fmt.Fprintf(&b, "<label kind=\"assignment\">%s</label>", strings.Join(rs, ", "))
			}
			b.WriteString("</transition>\n")
		}
		b.WriteString("  </template>\n")
	}

	// System composition.
	b.WriteString("  <system>\n")
	var procs []string
	for _, a := range n.Automata {
		name := sanitizeIdent(a.Name)
		fmt.Fprintf(&b, "    P_%s = %s();\n", name, name)
		procs = append(procs, "P_"+name)
	}
	fmt.Fprintf(&b, "    system %s;\n", strings.Join(procs, ", "))
	b.WriteString("  </system>\n")

	// Queries: error-freedom per observer.
	b.WriteString("  <queries>\n")
	for _, a := range n.Automata {
		for _, l := range a.Locations {
			if l.Error {
				fmt.Fprintf(&b, "    <query><formula>A[] not (P_%s.%s)</formula></query>\n",
					sanitizeIdent(a.Name), sanitizeIdent(l.Name))
			}
		}
	}
	b.WriteString("  </queries>\n")
	b.WriteString("</nta>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// guardExpr renders a guard as an UPPAAL boolean expression.
func guardExpr(g Guard) string {
	var parts []string
	for _, c := range g {
		op := c.Op.String()
		parts = append(parts, fmt.Sprintf("%s %s %d", sanitizeIdent(c.Clock), xmlEscapeOp(op), c.Bound))
	}
	return strings.Join(parts, " &amp;&amp; ")
}

func xmlEscapeOp(op string) string {
	op = strings.ReplaceAll(op, "<", "&lt;")
	op = strings.ReplaceAll(op, ">", "&gt;")
	return op
}

// sanitizeIdent maps arbitrary names to UPPAAL identifiers (letters,
// digits, underscore; must not start with a digit).
func sanitizeIdent(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
