package automata

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON codec for automata networks, the file format accepted by
// cmd/propas -model. The schema mirrors the in-memory structures; see
// testdata in the package tests for an example document.

type jsonConstraint struct {
	Clock string `json:"clock"`
	Op    string `json:"op"`
	Bound int64  `json:"bound"`
}

type jsonLocation struct {
	Name      string           `json:"name"`
	Invariant []jsonConstraint `json:"invariant,omitempty"`
	Error     bool             `json:"error,omitempty"`
}

type jsonEdge struct {
	From   string           `json:"from"`
	To     string           `json:"to"`
	Label  string           `json:"label,omitempty"`
	Guard  []jsonConstraint `json:"guard,omitempty"`
	Resets []string         `json:"resets,omitempty"`
}

type jsonAutomaton struct {
	Name      string         `json:"name"`
	Initial   string         `json:"initial"`
	Observer  bool           `json:"observer,omitempty"`
	Locations []jsonLocation `json:"locations"`
	Edges     []jsonEdge     `json:"edges"`
}

type jsonNetwork struct {
	Automata []jsonAutomaton `json:"automata"`
}

func opName(o Op) string { return o.String() }

func opOf(s string) (Op, error) {
	switch s {
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">=":
		return OpGe, nil
	case ">":
		return OpGt, nil
	case "==":
		return OpEq, nil
	default:
		return 0, fmt.Errorf("automata: unknown operator %q", s)
	}
}

func guardToJSON(g Guard) []jsonConstraint {
	out := make([]jsonConstraint, 0, len(g))
	for _, c := range g {
		out = append(out, jsonConstraint{Clock: c.Clock, Op: opName(c.Op), Bound: c.Bound})
	}
	return out
}

func guardFromJSON(cs []jsonConstraint) (Guard, error) {
	var g Guard
	for _, c := range cs {
		op, err := opOf(c.Op)
		if err != nil {
			return nil, err
		}
		g = append(g, Constraint{Clock: c.Clock, Op: op, Bound: c.Bound})
	}
	return g, nil
}

// WriteJSON encodes the network.
func (n *Network) WriteJSON(w io.Writer) error {
	doc := jsonNetwork{}
	for _, a := range n.Automata {
		ja := jsonAutomaton{Name: a.Name, Initial: a.Initial, Observer: a.Observer}
		for _, l := range a.Locations {
			ja.Locations = append(ja.Locations, jsonLocation{
				Name: l.Name, Invariant: guardToJSON(l.Invariant), Error: l.Error,
			})
		}
		for _, e := range a.Edges {
			ja.Edges = append(ja.Edges, jsonEdge{
				From: e.From, To: e.To, Label: e.Label,
				Guard: guardToJSON(e.Guard), Resets: e.Resets,
			})
		}
		doc.Automata = append(doc.Automata, ja)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON decodes and validates a network.
func ReadJSON(r io.Reader) (*Network, error) {
	var doc jsonNetwork
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("automata: network json: %w", err)
	}
	if len(doc.Automata) == 0 {
		return nil, fmt.Errorf("automata: network has no components")
	}
	var as []*Automaton
	for _, ja := range doc.Automata {
		a := New(ja.Name)
		a.Observer = ja.Observer
		for _, jl := range ja.Locations {
			inv, err := guardFromJSON(jl.Invariant)
			if err != nil {
				return nil, err
			}
			a.AddLocation(Location{Name: jl.Name, Invariant: inv, Error: jl.Error})
		}
		for _, je := range ja.Edges {
			g, err := guardFromJSON(je.Guard)
			if err != nil {
				return nil, err
			}
			a.AddEdge(Edge{From: je.From, To: je.To, Label: je.Label, Guard: g, Resets: je.Resets})
		}
		if ja.Initial != "" {
			a.SetInitial(ja.Initial)
		}
		as = append(as, a)
	}
	return NewNetwork(as...)
}
