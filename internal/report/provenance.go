package report

import (
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// gitCommit asks git for the short HEAD revision of the working tree
// the binary runs in. A seam so tests can fake both outcomes; it fails
// harmlessly (empty string) outside a checkout or without git.
var gitCommit = func() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Provenance returns the machine/revision metadata every BENCH_*.json
// table carries (Table.Meta), so a recorded run is attributable to the
// platform and commit that produced it. An empty commit falls back to
// `git rev-parse --short HEAD` (the common case: `go run` from a
// checkout embeds no vcs info), then the build info's vcs.revision,
// then "unknown".
func Provenance(commit string) map[string]string {
	if commit == "" {
		commit = gitCommit()
	}
	if commit == "" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					commit = s.Value
					break
				}
			}
		}
	}
	if commit == "" {
		commit = "unknown"
	}
	return map[string]string{
		"goos":   runtime.GOOS,
		"goarch": runtime.GOARCH,
		"cpus":   fmt.Sprintf("%d", runtime.NumCPU()),
		"go":     runtime.Version(),
		"commit": commit,
	}
}
