package report

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Provenance returns the machine/revision metadata every BENCH_*.json
// table carries (Table.Meta), so a recorded run is attributable to the
// platform and commit that produced it. An empty commit falls back to
// the build info's vcs.revision, then "unknown".
func Provenance(commit string) map[string]string {
	if commit == "" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					commit = s.Value
					break
				}
			}
		}
	}
	if commit == "" {
		commit = "unknown"
	}
	return map[string]string{
		"goos":   runtime.GOOS,
		"goarch": runtime.GOARCH,
		"cpus":   fmt.Sprintf("%d", runtime.NumCPU()),
		"go":     runtime.Version(),
		"commit": commit,
	}
}
