package report

import (
	"runtime"
	"testing"
)

// swapGitCommit stubs the git seam for one test.
func swapGitCommit(t *testing.T, fn func() string) {
	t.Helper()
	old := gitCommit
	gitCommit = fn
	t.Cleanup(func() { gitCommit = old })
}

func TestProvenanceExplicitCommitWins(t *testing.T) {
	swapGitCommit(t, func() string {
		t.Error("git consulted despite explicit -commit")
		return "deadbee"
	})
	m := Provenance("abc1234")
	if m["commit"] != "abc1234" {
		t.Fatalf("commit = %q, want abc1234", m["commit"])
	}
}

func TestProvenanceFallsBackToGit(t *testing.T) {
	swapGitCommit(t, func() string { return "deadbee" })
	m := Provenance("")
	if m["commit"] != "deadbee" {
		t.Fatalf("commit = %q, want deadbee", m["commit"])
	}
}

// With git unavailable the chain continues to build info; test binaries
// carry no vcs.revision, so the terminal "unknown" is what must appear
// rather than an empty string.
func TestProvenanceGitUnavailable(t *testing.T) {
	swapGitCommit(t, func() string { return "" })
	m := Provenance("")
	if m["commit"] == "" {
		t.Fatal("commit is empty; want vcs.revision or unknown")
	}
	for _, k := range []string{"goos", "goarch", "cpus", "go"} {
		if m[k] == "" {
			t.Errorf("meta %q missing", k)
		}
	}
	if m["goos"] != runtime.GOOS {
		t.Errorf("goos = %q, want %q", m["goos"], runtime.GOOS)
	}
}

// The real git seam must not explode when invoked, whatever the
// environment: worst case it reports nothing and the chain moves on.
func TestGitCommitSeamDoesNotPanic(t *testing.T) {
	_ = gitCommit()
}
