// Package report renders the experiment tables shared by the benchmark
// harness (cmd/vdo-bench) and the CLIs: fixed-width text for terminals and
// JSON for downstream processing.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Millis renders a duration as fractional milliseconds, the unit the
// experiment tables and engine telemetry report wall/busy times in.
func Millis(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// Percent renders a fraction in [0,1] as a whole percentage. NaN and
// ±Inf — the zero-denominator accidents — render "-" so one bad ratio
// can never corrupt a telemetry table or its JSON encoding.
func Percent(f float64) string {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*f)
}

// Float renders a ratio-style value with two decimals, with the same
// NaN/Inf tolerance as Percent.
func Float(f float64) string {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return "-"
	}
	return fmt.Sprintf("%.2f", f)
}

// Table is a titled grid of cells.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Note is free-text commentary printed under the table (expected
	// shape, caveats).
	Note string `json:"note,omitempty"`
	// Meta carries provenance key/values (goos, goarch, cpu count,
	// commit) serialised alongside benchmark tables so a recorded run is
	// attributable to the machine and revision that produced it.
	Meta map[string]string `json:"meta,omitempty"`
}

// New returns an empty table.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = Float(v)
		case float32:
			row[i] = Float(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// String renders the fixed-width text form.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	if len(t.Meta) > 0 {
		keys := make([]string, 0, len(t.Meta))
		for k := range t.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + t.Meta[k]
		}
		fmt.Fprintf(&b, "meta: %s\n", strings.Join(parts, " "))
	}
	return b.String()
}

// WriteText writes the text form to w.
func (t *Table) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, t.String()+"\n")
	return err
}

// WriteJSON writes the JSON form to w.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteCSV writes the table as CSV (header row then data rows), the form
// plotting scripts consume.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Markdown renders the table as GitHub-flavoured markdown, the form
// embedded in EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}
