package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := New("demo", "name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("a-very-long-name", 3.14159)
	tbl.Note = "numbers are rounded"
	s := tbl.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "a-very-long-name", "3.14", "note: numbers are rounded"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	// Columns align: every data row at least as wide as the header row.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected layout:\n%s", s)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := New("f", "v")
	tbl.AddRow(0.5)
	tbl.AddRow(float32(2))
	if tbl.Rows[0][0] != "0.50" || tbl.Rows[1][0] != "2.00" {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := New("c", "a", "b")
	tbl.AddRow("x,with,commas", 2)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "a,b" || !strings.Contains(lines[1], `"x,with,commas"`) {
		t.Errorf("csv:\n%s", buf.String())
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := New("m", "a", "b")
	tbl.AddRow(1, 2)
	tbl.Note = "a note"
	md := tbl.Markdown()
	for _, want := range []string{"### m", "| a | b |", "|---|---|", "| 1 | 2 |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestNonFiniteRendering: ratios computed over empty denominators must
// render as "-" everywhere, never leak NaN/Inf into tables or JSON.
func TestNonFiniteRendering(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := Percent(v); got != "-" {
			t.Errorf("Percent(%v) = %q, want -", v, got)
		}
		if got := Float(v); got != "-" {
			t.Errorf("Float(%v) = %q, want -", v, got)
		}
	}
	if got := Percent(0.5); got != "50%" {
		t.Errorf("Percent(0.5) = %q", got)
	}
	if got := Float(1.25); got != "1.25" {
		t.Errorf("Float(1.25) = %q", got)
	}
	tbl := New("nf", "v")
	tbl.AddRow(math.NaN())
	tbl.AddRow(float32(math.Inf(1)))
	if tbl.Rows[0][0] != "-" || tbl.Rows[1][0] != "-" {
		t.Errorf("non-finite rows = %v, want -", tbl.Rows)
	}
	var js bytes.Buffer
	if err := tbl.WriteJSON(&js); err != nil {
		t.Fatalf("non-finite table does not encode: %v", err)
	}
	if !json.Valid(js.Bytes()) {
		t.Error("encoded table invalid JSON")
	}
}

func TestSpanTableTopN(t *testing.T) {
	rows := []SpanRow{
		{Name: "sweep", Count: 1, Total: 8 * time.Millisecond, Max: 8 * time.Millisecond},
		{Name: "host", Count: 4, Total: 6 * time.Millisecond, Max: 2 * time.Millisecond},
		{Name: "check", Count: 32, Total: 4 * time.Millisecond, Max: time.Millisecond},
		{Name: "attempt", Count: 40, Total: 2 * time.Millisecond, Max: time.Millisecond},
	}
	tbl := SpanTable("where the time went", rows, 2)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "sweep" || tbl.Rows[1][0] != "host" {
		t.Errorf("top rows = %v, want sweep then host", tbl.Rows)
	}
	if !strings.Contains(tbl.Note, "top 2 of 4") {
		t.Errorf("note = %q, want hidden-row note", tbl.Note)
	}
	// With room for everything, no truncation note.
	full := SpanTable("all", rows, 10)
	if len(full.Rows) != 4 || full.Note != "" {
		t.Errorf("full table rows = %d note = %q", len(full.Rows), full.Note)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	tbl := New("t", "a")
	tbl.AddRow("x")
	var txt bytes.Buffer
	if err := tbl.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "== t ==") {
		t.Error("WriteText lost the title")
	}
	var js bytes.Buffer
	if err := tbl.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "t" || len(back.Rows) != 1 {
		t.Errorf("json round trip = %+v", back)
	}
}
