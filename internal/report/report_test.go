package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := New("demo", "name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("a-very-long-name", 3.14159)
	tbl.Note = "numbers are rounded"
	s := tbl.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "a-very-long-name", "3.14", "note: numbers are rounded"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	// Columns align: every data row at least as wide as the header row.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected layout:\n%s", s)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := New("f", "v")
	tbl.AddRow(0.5)
	tbl.AddRow(float32(2))
	if tbl.Rows[0][0] != "0.50" || tbl.Rows[1][0] != "2.00" {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := New("c", "a", "b")
	tbl.AddRow("x,with,commas", 2)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "a,b" || !strings.Contains(lines[1], `"x,with,commas"`) {
		t.Errorf("csv:\n%s", buf.String())
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := New("m", "a", "b")
	tbl.AddRow(1, 2)
	tbl.Note = "a note"
	md := tbl.Markdown()
	for _, want := range []string{"### m", "| a | b |", "|---|---|", "| 1 | 2 |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	tbl := New("t", "a")
	tbl.AddRow("x")
	var txt bytes.Buffer
	if err := tbl.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "== t ==") {
		t.Error("WriteText lost the title")
	}
	var js bytes.Buffer
	if err := tbl.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "t" || len(back.Rows) != 1 {
		t.Errorf("json round trip = %+v", back)
	}
}
