package report

import (
	"fmt"
	"time"
)

// SpanRow is one aggregated row of a span-trace breakdown: every ended
// span of one name folded together. telemetry.Tracer.Breakdown produces
// these rows; SpanTable renders them as the "where the time went"
// summary behind the CLIs' -metrics flag.
type SpanRow struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// SpanTable renders the top-n rows of a span breakdown. Rows are assumed
// pre-sorted by total duration descending (Breakdown's order); n <= 0
// keeps every row. Truncation is never silent: hidden rows are folded
// into the note with their summed duration. share is each name's
// fraction of the summed total across all rows, hidden ones included.
func SpanTable(title string, rows []SpanRow, n int) *Table {
	var sum time.Duration
	for _, r := range rows {
		sum += r.Total
	}
	t := New(title, "span", "count", "total-ms", "mean-ms", "max-ms", "share")
	shown := rows
	if n > 0 && len(rows) > n {
		shown = rows[:n]
	}
	for _, r := range shown {
		mean := time.Duration(0)
		if r.Count > 0 {
			mean = r.Total / time.Duration(r.Count)
		}
		share := "-"
		if sum > 0 {
			share = Percent(float64(r.Total) / float64(sum))
		}
		t.AddRow(r.Name, r.Count, Millis(r.Total), Millis(mean), Millis(r.Max), share)
	}
	if len(shown) < len(rows) {
		var hidden time.Duration
		for _, r := range rows[len(shown):] {
			hidden += r.Total
		}
		t.Note = fmt.Sprintf("top %d of %d span names; %d hidden names total %s ms",
			len(shown), len(rows), len(rows)-len(shown), Millis(hidden))
	}
	return t
}
