package vulndb

import (
	"fmt"
	"math/rand"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// Requirement generation: every advisory match becomes an RQCODE
// requirement ("the installed package must not be vulnerable to X"),
// checkable against the host and enforceable by upgrading to the fixed
// version (or removing the package when no fix exists). This is the WP2
// path from vulnerability databases to the same Checkable/Enforceable
// plane the STIG findings live on.

// PatchRequirement is the generated requirement for one advisory.
type PatchRequirement struct {
	core.Finding
	Host     *host.Linux
	Advisory Advisory
}

// NewPatchRequirement builds the requirement for an advisory.
func NewPatchRequirement(h *host.Linux, a Advisory) *PatchRequirement {
	score := a.Score()
	fix := "Upgrade " + a.Package + " to " + a.FixedIn + " or later."
	if a.FixedIn == "" {
		fix = "No fixed version exists; remove the " + a.Package + " package."
	}
	return &PatchRequirement{
		Finding: core.Finding{
			ID:       a.ID,
			Sev:      SeverityOf(score).String(),
			Desc:     fmt.Sprintf("%s (CVSS %.1f, %s)", a.Summary, score, a.Vector),
			Guide:    "Vulnerability advisories",
			CheckTxt: fmt.Sprintf("Verify %s is not installed at a version below %q.", a.Package, a.FixedIn),
			FixTxt:   fix,
		},
		Host:     h,
		Advisory: a,
	}
}

// Check reports PASS when the package is absent or at/above the fixed
// version.
func (r *PatchRequirement) Check() core.CheckStatus {
	if r.Host == nil {
		return core.CheckIncomplete
	}
	if !r.Host.Installed(r.Advisory.Package) {
		return core.CheckPass
	}
	if r.Advisory.FixedIn == "" {
		return core.CheckFail // installed and unfixable
	}
	return core.CheckBool(CompareVersions(r.Host.Version(r.Advisory.Package), r.Advisory.FixedIn) >= 0)
}

// CheckStateKeys declares the single package slot Check reads, making
// patch requirements localizable in fleet.DepIndex: a push-mode fleet
// re-evaluates the advisory only when its package changes. (Found by
// the keyreads analyzer: before PR 10 this type was unindexed and every
// host event conservatively re-ran the whole advisory catalogue.)
func (r *PatchRequirement) CheckStateKeys() []string {
	return []string{host.PackageKey(r.Advisory.Package).String()}
}

// Enforce upgrades the package to the fixed version, or removes it when no
// fix exists, verifying the mutation took effect.
func (r *PatchRequirement) Enforce() core.EnforcementStatus {
	if r.Host == nil {
		return core.EnforceIncomplete
	}
	if !r.Host.Installed(r.Advisory.Package) {
		return core.EnforceSuccess
	}
	if r.Advisory.FixedIn == "" {
		r.Host.Remove(r.Advisory.Package)
	} else {
		r.Host.Install(r.Advisory.Package, r.Advisory.FixedIn)
	}
	if r.Check() != core.CheckPass {
		return core.EnforceFailure
	}
	return core.EnforceSuccess
}

// String renders the requirement.
func (r *PatchRequirement) String() string {
	return fmt.Sprintf("[%s] %s must not be vulnerable (fixed in %q). Status: %s",
		r.FindingID(), r.Advisory.Package, r.Advisory.FixedIn, r.Check())
}

var _ core.CheckableEnforceableRequirement = (*PatchRequirement)(nil)
var _ core.KeyReader = (*PatchRequirement)(nil)

// Catalog generates one requirement per advisory matching the host and
// registers them in an RQCODE catalogue, ready for the same audit/enforce
// runner the STIG findings use.
func Catalog(db *DB, h *host.Linux) *core.Catalog {
	cat := core.NewCatalog()
	for _, m := range db.Scan(h) {
		cat.MustRegister(NewPatchRequirement(h, m.Advisory))
	}
	return cat
}

// GenerateFeed produces a synthetic advisory feed over the given package
// names for the benchmark harness: nPerPkg advisories per package with
// seeded severities and fixed versions. Deterministic in rng.
func GenerateFeed(packages []string, nPerPkg int, rng *rand.Rand) []Advisory {
	vectors := []string{
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // 9.8 critical
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", // 10.0 critical
		"CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N", // 6.5 medium
		"CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N", // 5.5 medium
		"CVSS:3.1/AV:N/AC:H/PR:N/UI:R/S:U/C:L/I:L/A:N", // 4.2 medium
		"CVSS:3.1/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", // 2.2 low
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", // 7.5 high
		"CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // 8.8 high
	}
	var out []Advisory
	id := 0
	for _, pkg := range packages {
		for i := 0; i < nPerPkg; i++ {
			id++
			a := Advisory{
				ID:      fmt.Sprintf("CVE-2026-%05d", id),
				Package: pkg,
				Vector:  vectors[rng.Intn(len(vectors))],
				Summary: fmt.Sprintf("Synthetic vulnerability %d in %s.", i+1, pkg),
			}
			// 80% of advisories have a fix one minor version up.
			if rng.Float64() < 0.8 {
				a.FixedIn = fmt.Sprintf("1.%d.0", 1+rng.Intn(9))
			}
			out = append(out, a)
		}
	}
	return out
}
