package vulndb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"veridevops/internal/host"
)

// Advisory is one vulnerability record of the database, shaped like the
// OSV/USN feeds the prototype consumes.
type Advisory struct {
	ID      string `json:"id"`      // e.g. "CVE-2024-0001"
	Package string `json:"package"` // affected package name
	// FixedIn is the first non-vulnerable version; every installed version
	// below it is affected. Empty means no fix exists (the package must be
	// removed to remediate).
	FixedIn string `json:"fixed_in,omitempty"`
	Vector  string `json:"vector"` // CVSS v3.1 base vector
	Summary string `json:"summary"`
}

// Score returns the advisory's CVSS base score (0 on a malformed vector;
// Validate catches those earlier).
func (a Advisory) Score() float64 {
	v, err := ParseVector(a.Vector)
	if err != nil {
		return 0
	}
	return v.BaseScore()
}

// DB is an advisory database indexed by package.
type DB struct {
	byPackage map[string][]Advisory
	count     int
}

// NewDB builds a database, validating every advisory.
func NewDB(advisories []Advisory) (*DB, error) {
	db := &DB{byPackage: map[string][]Advisory{}}
	seen := map[string]bool{}
	for _, a := range advisories {
		if a.ID == "" || a.Package == "" {
			return nil, fmt.Errorf("vulndb: advisory needs id and package: %+v", a)
		}
		if seen[a.ID] {
			return nil, fmt.Errorf("vulndb: duplicate advisory %s", a.ID)
		}
		seen[a.ID] = true
		if _, err := ParseVector(a.Vector); err != nil {
			return nil, fmt.Errorf("vulndb: %s: %w", a.ID, err)
		}
		db.byPackage[a.Package] = append(db.byPackage[a.Package], a)
		db.count++
	}
	return db, nil
}

// ReadJSON loads a database from a JSON array of advisories.
func ReadJSON(r io.Reader) (*DB, error) {
	var advisories []Advisory
	if err := json.NewDecoder(r).Decode(&advisories); err != nil {
		return nil, fmt.Errorf("vulndb: feed json: %w", err)
	}
	return NewDB(advisories)
}

// WriteJSON stores the database as a JSON advisory array.
func (db *DB) WriteJSON(w io.Writer) error {
	var all []Advisory
	for _, as := range db.byPackage {
		all = append(all, as...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(all)
}

// Len returns the number of advisories.
func (db *DB) Len() int { return db.count }

// Match is one advisory affecting an installed package.
type Match struct {
	Advisory  Advisory
	Installed string // installed version
	Score     float64
	Severity  Severity
}

// Scan matches the database against the host's installed packages,
// returning matches sorted by descending score then ID.
func (db *DB) Scan(h *host.Linux) []Match {
	var out []Match
	for _, pkg := range h.Packages() {
		for _, a := range db.byPackage[pkg] {
			installed := installedVersion(h, pkg)
			if a.FixedIn != "" && CompareVersions(installed, a.FixedIn) >= 0 {
				continue // already fixed
			}
			score := a.Score()
			out = append(out, Match{
				Advisory:  a,
				Installed: installed,
				Score:     score,
				Severity:  SeverityOf(score),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Advisory.ID < out[j].Advisory.ID
	})
	return out
}

// installedVersion reads the version of an installed package. The host
// package list exposes names; versions travel through the pattern below.
func installedVersion(h *host.Linux, pkg string) string {
	return h.Version(pkg)
}

// CompareVersions compares dotted version strings numerically per
// component ("1.2.10" > "1.2.9"), falling back to string comparison for
// non-numeric components ("1.0~beta" segments compare as strings). It
// returns -1, 0 or 1.
func CompareVersions(a, b string) int {
	as := strings.FieldsFunc(a, versionSep)
	bs := strings.FieldsFunc(b, versionSep)
	for i := 0; i < len(as) || i < len(bs); i++ {
		var x, y string
		if i < len(as) {
			x = as[i]
		}
		if i < len(bs) {
			y = bs[i]
		}
		xi, xe := strconv.Atoi(x)
		yi, ye := strconv.Atoi(y)
		switch {
		case xe == nil && ye == nil:
			if xi != yi {
				if xi < yi {
					return -1
				}
				return 1
			}
		default:
			if x != y {
				if x < y {
					return -1
				}
				return 1
			}
		}
	}
	return 0
}

func versionSep(r rune) bool { return r == '.' || r == '-' || r == '+' || r == '~' || r == ':' }

// Summary aggregates a scan.
type ScanSummary struct {
	Matches  int
	Critical int
	High     int
	Medium   int
	Low      int
	MaxScore float64
}

// Summarize counts matches per severity band.
func Summarize(matches []Match) ScanSummary {
	var s ScanSummary
	for _, m := range matches {
		s.Matches++
		if m.Score > s.MaxScore {
			s.MaxScore = m.Score
		}
		switch m.Severity {
		case SeverityCritical:
			s.Critical++
		case SeverityHigh:
			s.High++
		case SeverityMedium:
			s.Medium++
		case SeverityLow:
			s.Low++
		}
	}
	return s
}
