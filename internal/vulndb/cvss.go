// Package vulndb implements the vulnerability-database input source of
// VeriDevOps WP2: the DATE 2021 paper derives security requirements "from
// natural language requirements, vulnerability databases and standards".
// The package provides CVSS v3.1 base scoring (the full specification
// formula), an advisory database matched against simulated-host package
// inventories, and generation of RQCODE requirements from matches — closing
// the loop from a CVE feed to enforceable requirements.
package vulndb

import (
	"fmt"
	"math"
	"strings"
)

// Vector is a parsed CVSS v3.1 base vector.
type Vector struct {
	AV byte // attack vector: N A L P
	AC byte // attack complexity: L H
	PR byte // privileges required: N L H
	UI byte // user interaction: N R
	S  byte // scope: U C
	C  byte // confidentiality: H L N
	I  byte // integrity: H L N
	A  byte // availability: H L N
}

// ParseVector parses a "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
// string (the 3.0 prefix is accepted; the base formula is identical).
func ParseVector(s string) (Vector, error) {
	var v Vector
	parts := strings.Split(strings.TrimSpace(s), "/")
	if len(parts) == 0 || (parts[0] != "CVSS:3.1" && parts[0] != "CVSS:3.0") {
		return v, fmt.Errorf("vulndb: vector must start with CVSS:3.1, got %q", s)
	}
	seen := map[string]bool{}
	for _, p := range parts[1:] {
		kv := strings.SplitN(p, ":", 2)
		if len(kv) != 2 || len(kv[1]) != 1 {
			return v, fmt.Errorf("vulndb: malformed metric %q", p)
		}
		key, val := kv[0], kv[1][0]
		if seen[key] {
			return v, fmt.Errorf("vulndb: duplicate metric %q", key)
		}
		seen[key] = true
		ok := false
		set := func(dst *byte, allowed string) {
			if strings.IndexByte(allowed, val) >= 0 {
				*dst = val
				ok = true
			}
		}
		switch key {
		case "AV":
			set(&v.AV, "NALP")
		case "AC":
			set(&v.AC, "LH")
		case "PR":
			set(&v.PR, "NLH")
		case "UI":
			set(&v.UI, "NR")
		case "S":
			set(&v.S, "UC")
		case "C":
			set(&v.C, "HLN")
		case "I":
			set(&v.I, "HLN")
		case "A":
			set(&v.A, "HLN")
		default:
			return v, fmt.Errorf("vulndb: unknown metric %q", key)
		}
		if !ok {
			return v, fmt.Errorf("vulndb: invalid value %q for %s", string(val), key)
		}
	}
	for _, m := range []struct {
		name string
		val  byte
	}{{"AV", v.AV}, {"AC", v.AC}, {"PR", v.PR}, {"UI", v.UI}, {"S", v.S}, {"C", v.C}, {"I", v.I}, {"A", v.A}} {
		if m.val == 0 {
			return v, fmt.Errorf("vulndb: missing metric %s", m.name)
		}
	}
	return v, nil
}

// String renders the canonical vector form.
func (v Vector) String() string {
	return fmt.Sprintf("CVSS:3.1/AV:%c/AC:%c/PR:%c/UI:%c/S:%c/C:%c/I:%c/A:%c",
		v.AV, v.AC, v.PR, v.UI, v.S, v.C, v.I, v.A)
}

func cia(b byte) float64 {
	switch b {
	case 'H':
		return 0.56
	case 'L':
		return 0.22
	default:
		return 0
	}
}

// BaseScore computes the CVSS v3.1 base score per the specification
// (first.org/cvss/v3.1/specification-document, section 7.1).
func (v Vector) BaseScore() float64 {
	var av float64
	switch v.AV {
	case 'N':
		av = 0.85
	case 'A':
		av = 0.62
	case 'L':
		av = 0.55
	case 'P':
		av = 0.2
	}
	ac := 0.44
	if v.AC == 'L' {
		ac = 0.77
	}
	changed := v.S == 'C'
	var pr float64
	switch v.PR {
	case 'N':
		pr = 0.85
	case 'L':
		pr = 0.62
		if changed {
			pr = 0.68
		}
	case 'H':
		pr = 0.27
		if changed {
			pr = 0.5
		}
	}
	ui := 0.62
	if v.UI == 'N' {
		ui = 0.85
	}

	iss := 1 - (1-cia(v.C))*(1-cia(v.I))*(1-cia(v.A))
	var impact float64
	if changed {
		impact = 7.52*(iss-0.029) - 3.25*math.Pow(iss-0.02, 15)
	} else {
		impact = 6.42 * iss
	}
	if impact <= 0 {
		return 0
	}
	exploitability := 8.22 * av * ac * pr * ui
	var score float64
	if changed {
		score = math.Min(1.08*(impact+exploitability), 10)
	} else {
		score = math.Min(impact+exploitability, 10)
	}
	return roundup(score)
}

// roundup is the CVSS v3.1 specification rounding: the smallest number,
// specified to one decimal, equal to or higher than its input (Appendix A
// pseudocode, which compensates for floating-point representation).
func roundup(x float64) float64 {
	i := int(math.Round(x * 100000))
	if i%10000 == 0 {
		return float64(i) / 100000
	}
	return (math.Floor(float64(i)/10000) + 1) / 10
}

// Severity is the CVSS qualitative rating scale.
type Severity int

// Severity levels.
const (
	SeverityNone Severity = iota
	SeverityLow
	SeverityMedium
	SeverityHigh
	SeverityCritical
)

func (s Severity) String() string {
	switch s {
	case SeverityNone:
		return "none"
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// SeverityOf maps a base score to the qualitative scale.
func SeverityOf(score float64) Severity {
	switch {
	case score <= 0:
		return SeverityNone
	case score < 4.0:
		return SeverityLow
	case score < 7.0:
		return SeverityMedium
	case score < 9.0:
		return SeverityHigh
	default:
		return SeverityCritical
	}
}
