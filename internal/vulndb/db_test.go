package vulndb

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

const (
	critVector = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H" // 9.8
	medVector  = "CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N" // 5.5
)

func sampleDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewDB([]Advisory{
		{ID: "CVE-1", Package: "openssl", FixedIn: "1.1.1", Vector: critVector, Summary: "RCE in handshake."},
		{ID: "CVE-2", Package: "openssl", FixedIn: "1.0.5", Vector: medVector, Summary: "Local info leak."},
		{ID: "CVE-3", Package: "nginx", FixedIn: "", Vector: medVector, Summary: "Unfixable design flaw."},
		{ID: "CVE-4", Package: "ghostpkg", FixedIn: "2.0", Vector: medVector, Summary: "Not installed anywhere."},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB([]Advisory{{ID: "", Package: "x", Vector: critVector}}); err == nil {
		t.Error("missing ID must error")
	}
	if _, err := NewDB([]Advisory{{ID: "a", Package: "", Vector: critVector}}); err == nil {
		t.Error("missing package must error")
	}
	if _, err := NewDB([]Advisory{
		{ID: "a", Package: "x", Vector: critVector},
		{ID: "a", Package: "y", Vector: critVector},
	}); err == nil {
		t.Error("duplicate ID must error")
	}
	if _, err := NewDB([]Advisory{{ID: "a", Package: "x", Vector: "garbage"}}); err == nil {
		t.Error("bad vector must error")
	}
}

func TestScan(t *testing.T) {
	db := sampleDB(t)
	h := host.NewLinux()
	h.Install("openssl", "1.0.2") // vulnerable to CVE-1 and CVE-2
	h.Install("nginx", "1.18")    // vulnerable to CVE-3 (no fix)
	h.Install("unrelated", "1.0")

	matches := db.Scan(h)
	if len(matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(matches))
	}
	// Sorted by score: CVE-1 (9.8) first.
	if matches[0].Advisory.ID != "CVE-1" || matches[0].Score != 9.8 {
		t.Errorf("first match = %+v", matches[0])
	}
	if matches[0].Severity != SeverityCritical {
		t.Errorf("severity = %v", matches[0].Severity)
	}
	if matches[0].Installed != "1.0.2" {
		t.Errorf("installed = %q", matches[0].Installed)
	}
}

func TestScanSkipsFixedVersions(t *testing.T) {
	db := sampleDB(t)
	h := host.NewLinux()
	h.Install("openssl", "1.1.1") // at the fixed version: immune to CVE-1, still >= 1.0.5 for CVE-2
	matches := db.Scan(h)
	if len(matches) != 0 {
		t.Errorf("matches = %v, want none", matches)
	}
}

func TestCompareVersions(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.0.0", "1.0.0", 0},
		{"1.0.1", "1.0.0", 1},
		{"1.0.0", "1.0.1", -1},
		{"1.2.10", "1.2.9", 1},
		{"1.10", "1.9", 1},
		{"2.0", "1.9.9", 1},
		{"1.0", "1.0.1", -1},
		{"1.0-beta", "1.0-alpha", 1},
		{"1.0~rc1", "1.0~rc2", -1},
		{"0.legacy", "1.0", -1},
	}
	for _, c := range cases {
		if got := CompareVersions(c.a, c.b); got != c.want {
			t.Errorf("CompareVersions(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Errorf("Len = %d, want %d", got.Len(), db.Len())
	}
	if _, err := ReadJSON(strings.NewReader("[{")); err == nil {
		t.Error("malformed feed must error")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"id":"x","package":"p","vector":"bad"}]`)); err == nil {
		t.Error("bad vector in feed must error")
	}
}

func TestSummarize(t *testing.T) {
	db := sampleDB(t)
	h := host.NewLinux()
	h.Install("openssl", "1.0.2")
	h.Install("nginx", "1.18")
	s := Summarize(db.Scan(h))
	if s.Matches != 3 || s.Critical != 1 || s.Medium != 2 || s.MaxScore != 9.8 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.Matches != 0 || z.MaxScore != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPatchRequirementUpgrade(t *testing.T) {
	h := host.NewLinux()
	h.Install("openssl", "1.0.2")
	req := NewPatchRequirement(h, Advisory{
		ID: "CVE-1", Package: "openssl", FixedIn: "1.1.1", Vector: critVector, Summary: "RCE."})

	if req.Severity() != "critical" {
		t.Errorf("Severity = %q", req.Severity())
	}
	if req.Check() != core.CheckFail {
		t.Error("vulnerable version must FAIL")
	}
	if req.Enforce() != core.EnforceSuccess {
		t.Error("upgrade should succeed")
	}
	if h.Version("openssl") != "1.1.1" {
		t.Errorf("version after enforcement = %q", h.Version("openssl"))
	}
	if req.Check() != core.CheckPass {
		t.Error("upgraded host must PASS")
	}
	if !strings.Contains(req.String(), "CVE-1") {
		t.Errorf("String = %q", req.String())
	}
}

func TestPatchRequirementRemoveUnfixable(t *testing.T) {
	h := host.NewLinux()
	h.Install("nginx", "1.18")
	req := NewPatchRequirement(h, Advisory{
		ID: "CVE-3", Package: "nginx", Vector: medVector, Summary: "Unfixable."})
	if req.Check() != core.CheckFail {
		t.Error("unfixable installed package must FAIL")
	}
	req.Enforce()
	if h.Installed("nginx") {
		t.Error("enforcement must remove the unfixable package")
	}
	if req.Check() != core.CheckPass {
		t.Error("absent package must PASS")
	}
}

func TestPatchRequirementAbsentPackage(t *testing.T) {
	h := host.NewLinux()
	req := NewPatchRequirement(h, Advisory{ID: "CVE-9", Package: "ghost", FixedIn: "1.0", Vector: medVector})
	if req.Check() != core.CheckPass || req.Enforce() != core.EnforceSuccess {
		t.Error("absent package is not vulnerable")
	}
	nilHost := NewPatchRequirement(nil, Advisory{ID: "CVE-9", Package: "x", Vector: medVector})
	if nilHost.Check() != core.CheckIncomplete || nilHost.Enforce() != core.EnforceIncomplete {
		t.Error("nil host must be INCOMPLETE")
	}
}

func TestPatchRequirementReadOnlyHost(t *testing.T) {
	h := host.NewLinux()
	h.Install("openssl", "1.0.2")
	h.SetReadOnly(true)
	req := NewPatchRequirement(h, Advisory{ID: "CVE-1", Package: "openssl", FixedIn: "1.1.1", Vector: critVector})
	if req.Enforce() != core.EnforceFailure {
		t.Error("read-only host must fail enforcement")
	}
}

func TestVulnCatalog(t *testing.T) {
	db := sampleDB(t)
	h := host.NewLinux()
	h.Install("openssl", "1.0.2")
	h.Install("nginx", "1.18")
	cat := Catalog(db, h)
	if cat.Len() != 3 {
		t.Fatalf("catalogue = %d entries", cat.Len())
	}
	rep := cat.Run(core.CheckAndEnforce)
	if rep.Compliance() != 1 {
		t.Errorf("remediation incomplete:\n%s", rep)
	}
	if h.Version("openssl") != "1.1.1" || h.Installed("nginx") {
		t.Error("host not patched as expected")
	}
	// Re-scan is clean.
	if len(db.Scan(h)) != 0 {
		t.Error("post-remediation scan must be clean")
	}
}

func TestGenerateFeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	feed := GenerateFeed([]string{"a", "b", "c"}, 5, rng)
	if len(feed) != 15 {
		t.Fatalf("feed = %d advisories", len(feed))
	}
	if _, err := NewDB(feed); err != nil {
		t.Errorf("generated feed must validate: %v", err)
	}
	// Determinism.
	feed2 := GenerateFeed([]string{"a", "b", "c"}, 5, rand.New(rand.NewSource(4)))
	for i := range feed {
		if feed[i] != feed2[i] {
			t.Fatal("feed generation must be deterministic")
		}
	}
}
