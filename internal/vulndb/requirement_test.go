package vulndb_test

import (
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/fleet"
	"veridevops/internal/host"
	"veridevops/internal/vulndb"
)

// TestPatchRequirementDeclaredReads locks in the PR 10 keyreads fix:
// patch requirements declare the package slot they read, so advisory
// catalogues are localizable in the dependency index, and the dynamic
// oracle confirms the declaration covers every recorded read in both
// the vulnerable-installed and absent states.
func TestPatchRequirementDeclaredReads(t *testing.T) {
	h := host.NewLinux()
	h.Install("openssl", "1.0.0")

	vulnerable := vulndb.Advisory{ID: "CVE-2026-0001", Package: "openssl", FixedIn: "1.0.2",
		Vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", Summary: "synthetic"}
	absent := vulndb.Advisory{ID: "CVE-2026-0002", Package: "telnetd", FixedIn: "2.0",
		Vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", Summary: "synthetic"}

	cat := core.NewCatalog()
	for _, a := range []vulndb.Advisory{vulnerable, absent} {
		req := vulndb.NewPatchRequirement(h, a)
		keys, ok := core.CheckKeys(req)
		if !ok || len(keys) != 1 || keys[0] != host.PackageKey(a.Package).String() {
			t.Fatalf("%s: CheckKeys = (%v, %v), want [%s]", a.ID, keys, ok, host.PackageKey(a.Package))
		}
		cat.MustRegister(req)
	}

	// The installed advisory reads pkg:openssl twice (Installed +
	// Version); the absent one short-circuits after pkg:telnetd. Either
	// way every recorded read is declared and every declared key read.
	if vs := fleet.VerifyReads(cat, h); len(vs) != 0 {
		t.Fatalf("VerifyReads = %v, want no violations", vs)
	}
}
