package vulndb

import (
	"math"
	"strings"
	"testing"
)

// Known vectors with scores published in the CVSS v3.1 specification and
// the NVD calculator.
func TestBaseScoreKnownVectors(t *testing.T) {
	cases := []struct {
		vector string
		want   float64
	}{
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8},
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0},
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 7.5},
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5},
		{"CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N", 5.5},
		{"CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N", 6.5},
		{"CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 8.8},
		{"CVSS:3.1/AV:N/AC:H/PR:N/UI:R/S:U/C:L/I:L/A:N", 4.2},
		{"CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6},
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0},
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1}, // classic XSS
		{"CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H", 7.8}, // classic malicious-file
		{"CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H", 9.9},
	}
	for _, c := range cases {
		v, err := ParseVector(c.vector)
		if err != nil {
			t.Errorf("%s: %v", c.vector, err)
			continue
		}
		if got := v.BaseScore(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("BaseScore(%s) = %.2f, want %.1f", c.vector, got, c.want)
		}
	}
}

func TestParseVectorRoundTrip(t *testing.T) {
	in := "CVSS:3.1/AV:A/AC:H/PR:L/UI:R/S:C/C:L/I:H/A:N"
	v, err := ParseVector(in)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != in {
		t.Errorf("String = %q, want %q", v.String(), in)
	}
	// 3.0 prefix accepted, canonicalised to 3.1.
	v2, err := ParseVector(strings.Replace(in, "3.1", "3.0", 1))
	if err != nil {
		t.Fatal(err)
	}
	if v2.String() != in {
		t.Errorf("3.0 canonicalisation = %q", v2.String())
	}
}

func TestParseVectorErrors(t *testing.T) {
	bad := []string{
		"",
		"AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // missing prefix
		"CVSS:2.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",      // wrong version
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H",          // missing A
		"CVSS:3.1/AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",      // bad value
		"CVSS:3.1/AV:N/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // duplicate
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/ZZ:Q", // unknown metric
		"CVSS:3.1/AV:NN/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",     // long value
		"CVSS:3.1/AV/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",        // malformed pair
	}
	for _, s := range bad {
		if _, err := ParseVector(s); err == nil {
			t.Errorf("ParseVector(%q) should fail", s)
		}
	}
}

func TestRoundup(t *testing.T) {
	cases := map[float64]float64{
		4.0:  4.0,
		4.02: 4.1,
		4.07: 4.1,
		4.10: 4.1,
		9.99: 10.0,
		0.0:  0.0,
	}
	for in, want := range cases {
		if got := roundup(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("roundup(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestSeverityBands(t *testing.T) {
	cases := map[float64]Severity{
		0:    SeverityNone,
		0.1:  SeverityLow,
		3.9:  SeverityLow,
		4.0:  SeverityMedium,
		6.9:  SeverityMedium,
		7.0:  SeverityHigh,
		8.9:  SeverityHigh,
		9.0:  SeverityCritical,
		10.0: SeverityCritical,
	}
	for score, want := range cases {
		if got := SeverityOf(score); got != want {
			t.Errorf("SeverityOf(%v) = %v, want %v", score, got, want)
		}
	}
	if SeverityCritical.String() != "critical" || SeverityNone.String() != "none" {
		t.Error("severity names wrong")
	}
	if Severity(42).String() == "" {
		t.Error("unknown severity should still print")
	}
}

// Property: every score lands in [0,10] with one decimal, and scope change
// never lowers the score of an otherwise-identical vector.
func TestScoreRangeAndScopeMonotonicity(t *testing.T) {
	avs := []byte{'N', 'A', 'L', 'P'}
	acs := []byte{'L', 'H'}
	prs := []byte{'N', 'L', 'H'}
	uis := []byte{'N', 'R'}
	cias := []byte{'H', 'L', 'N'}
	for _, av := range avs {
		for _, ac := range acs {
			for _, pr := range prs {
				for _, ui := range uis {
					for _, c := range cias {
						for _, i := range cias {
							for _, a := range cias {
								u := Vector{AV: av, AC: ac, PR: pr, UI: ui, S: 'U', C: c, I: i, A: a}
								ch := u
								ch.S = 'C'
								su, sc := u.BaseScore(), ch.BaseScore()
								for _, s := range []float64{su, sc} {
									if s < 0 || s > 10 {
										t.Fatalf("score %v out of range for %s", s, u)
									}
									if math.Abs(s*10-math.Round(s*10)) > 1e-9 {
										t.Fatalf("score %v not one-decimal for %s", s, u)
									}
								}
								if sc < su {
									t.Fatalf("scope change lowered score: %s %v -> %v", u, su, sc)
								}
							}
						}
					}
				}
			}
		}
	}
}
