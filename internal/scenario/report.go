package scenario

import (
	"fmt"
	"strings"

	"veridevops/internal/tears"
	"veridevops/internal/trace"
)

// StepResult is one step's outcome with provenance: which step, when,
// what it targeted, and what happened.
type StepResult struct {
	Index int
	At    Duration
	Kind  string
	// Target is the resolved target description (selector, host name, or
	// signal name).
	Target string
	// OK is false when an assertion failed. Skipped marks mutations that
	// found no eligible target (unreachable hosts, empty selectors) —
	// recorded, not fatal.
	OK      bool
	Skipped bool
	Detail  string
}

// GAResult is one deferred guarded-assertion verdict with the step that
// requested it.
type GAResult struct {
	Step    int
	Verdict tears.Verdict
}

// Result is one scenario execution's structured outcome. Every field is
// derived from the virtual clock and the seeded fleet, so identical
// (spec, mode) inputs render byte-identical reports.
type Result struct {
	Spec Spec
	Mode string
	// Steps holds per-step provenance in step order; Schedule the
	// virtual-time event log (ticks interleaved with steps).
	Steps    []StepResult
	Schedule []string
	GAs      []GAResult
	// Ticks counts evaluation passes; Alarms/Repairs the violation
	// episodes opened and closed over the whole run.
	Ticks   int
	Alarms  int
	Repairs int
	// FinalCompliance and FinalState snapshot the live verdict view at
	// the horizon; FinalState lines are sorted "host finding status".
	FinalCompliance float64
	FinalState      []string
	// Trace is the recorded signal log (compliance, failing, incomplete,
	// alarms, repairs, alarm/repair pulses, custom signals).
	Trace *trace.Trace
	// ReadViolations holds the dynamic declared-reads oracle's findings
	// ("host: finding: kind [keys] ..."), sorted by host, when
	// Options.VerifyReads was set; FatalReadViolations counts the
	// undeclared-read subset, which fails the run.
	ReadViolations      []string
	FatalReadViolations int
}

// Failed reports whether any assertion step failed or the declared-reads
// oracle observed an undeclared read.
func (r *Result) Failed() bool {
	if r.FatalReadViolations > 0 {
		return true
	}
	for _, s := range r.Steps {
		if !s.OK {
			return true
		}
	}
	return false
}

// Failures returns the failing steps.
func (r *Result) Failures() []StepResult {
	var out []StepResult
	for _, s := range r.Steps {
		if !s.OK {
			out = append(out, s)
		}
	}
	return out
}

// Report renders the structured failure report: verdict, per-step
// provenance, guarded-assertion table and final fleet state summary.
// The rendering contains only virtual-clock quantities, so it is
// byte-identical across runs of the same spec and mode.
func (r *Result) Report() string {
	var b strings.Builder
	verdict := "PASS"
	if r.Failed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %s [%s]: %s\n", r.Spec.Name, r.Mode, verdict)
	if r.Spec.Description != "" {
		fmt.Fprintf(&b, "  %s\n", r.Spec.Description)
	}
	fmt.Fprintf(&b, "  hosts=%d seed=%d steps=%d ticks=%d\n",
		r.Spec.Hosts, r.Spec.Seed, len(r.Steps), r.Ticks)
	for _, s := range r.Steps {
		mark := "ok  "
		switch {
		case !s.OK:
			mark = "FAIL"
		case s.Skipped:
			mark = "skip"
		}
		fmt.Fprintf(&b, "  %s #%-2d t=%-8v %-18s %s\n", mark, s.Index, s.At.D(), s.Kind, s.Detail)
	}
	if len(r.GAs) > 0 {
		b.WriteString("  guarded assertions:\n")
		for _, g := range r.GAs {
			v := g.Verdict
			verdict := "PASS"
			switch {
			case !v.Passed():
				verdict = "FAIL"
			case v.Vacuous():
				verdict = "VACUOUS"
			}
			fmt.Fprintf(&b, "    %-7s %s (activations=%d violations=%d)\n",
				verdict, v.GA.Name, v.Activations, len(v.Violations))
		}
	}
	if len(r.ReadViolations) > 0 {
		fmt.Fprintf(&b, "  declared-reads oracle: %d violation(s), %d fatal\n",
			len(r.ReadViolations), r.FatalReadViolations)
		for _, v := range r.ReadViolations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	fmt.Fprintf(&b, "  final: compliance=%.4f alarms=%d repairs=%d verdicts=%d\n",
		r.FinalCompliance, r.Alarms, r.Repairs, len(r.FinalState))
	return b.String()
}
