// Package scenario executes declarative timed incident scenarios against
// the fleet stack: a JSON spec describes a synthesized fleet and a list
// of forward-only `{"at": "30s", ...}` steps on the virtual clock — host
// mutations through the keyed simulators (package install/remove,
// service flap, config edits, join/leave, connectivity), engine fault
// injection, pipeline commits — interleaved with `expect` assertions on
// live verdicts, alarm/repair episodes and TEARS guarded assertions over
// the recorded compliance trace. The same spec runs against either the
// batch sweep coordinator or the push streamer, so a scenario doubles as
// a cross-mode regression test: identical incident narrative, identical
// final verdicts, two evaluation strategies.
//
// The format follows the loadgen topology-spec precedent: plain JSON,
// stdlib decoding, unknown fields rejected so a typoed knob fails loudly.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"veridevops/internal/gwt"
	"veridevops/internal/loadgen"
	"veridevops/internal/tears"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("30s", "250ms") so specs read as narratives, not nanosecond counts.
type Duration time.Duration

// D converts to the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string ("30s") or a bare number of
// nanoseconds (the encoding a round-tripped zero produces).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"30s\": %s", b)
	}
	*d = Duration(n)
	return nil
}

// Step is one timed action: a mutation (Do) or an assertion (Expect),
// exactly one of which must be set. The remaining fields parameterize
// the kind; Validate rejects steps missing their kind's requirements.
type Step struct {
	// At is the virtual instant the step executes. Steps run in At order
	// (stable for equal instants); evaluation ticks due at or before At
	// run first, so a mutation at t is observed by the first tick after t.
	At Duration `json:"at"`
	// Do names a mutation kind: install, remove, enable, disable, flap,
	// config, unset-config, join, leave, down, up, churn, faults, heal,
	// pipeline, signal.
	Do string `json:"do,omitempty"`
	// Expect names an assertion kind: verdict, compliance, alarms,
	// repairs, degraded, ga, gwt.
	Expect string `json:"expect,omitempty"`
	// On selects target hosts: an exact host name, a class name (all its
	// members), "class#i" (the i-th member of the class in name order),
	// "class#i..j" (an inclusive range), "#i" / "#i..j" (fleet-wide name
	// order), or "*" (every member).
	On string `json:"on,omitempty"`

	Package string `json:"package,omitempty"`
	Version string `json:"version,omitempty"`
	Service string `json:"service,omitempty"`
	File    string `json:"file,omitempty"`
	Key     string `json:"key,omitempty"`
	Value   string `json:"value,omitempty"`
	// Class forces the synthesized class of a join step.
	Class string `json:"class,omitempty"`
	// Events is the number of churn events a churn step draws.
	Events int `json:"events,omitempty"`
	// Commits and GateRecall parameterize a pipeline step; escaped
	// violations materialize as banned-package drift on the On hosts.
	Commits    int     `json:"commits,omitempty"`
	GateRecall float64 `json:"gate_recall,omitempty"`
	// Seed overrides the spec seed for this step's random draws
	// (pipeline); 0 derives one from the spec seed and step index.
	Seed int64 `json:"seed,omitempty"`
	// FailFirst is the faults step's injected plan: the first N checks of
	// every requirement on the On hosts return transient INCOMPLETE.
	FailFirst int `json:"fail_first,omitempty"`
	// Signal and Num are the custom trace signal a signal step records.
	Signal string  `json:"signal,omitempty"`
	Num    float64 `json:"num,omitempty"`
	// Finding and Status are a verdict expectation ("pass", "fail",
	// "error", "incomplete"); Op and Num a numeric one ("==", "!=", "<",
	// "<=", ">", ">=" against compliance/alarms/repairs).
	Finding string `json:"finding,omitempty"`
	Status  string `json:"status,omitempty"`
	Op      string `json:"op,omitempty"`
	// GA is a raw TEARS guarded-assertion line; Gherkin a Given-When-Then
	// text bridged into G/As with WithinMS as the response window. Both
	// are deferred to the end of the run and evaluated over the full
	// recorded trace.
	GA       string `json:"ga,omitempty"`
	Gherkin  string `json:"gherkin,omitempty"`
	WithinMS int64  `json:"within_ms,omitempty"`
}

// Kind returns the step's action name regardless of which side it is on.
func (s Step) Kind() string {
	if s.Do != "" {
		return s.Do
	}
	return "expect " + s.Expect
}

// Spec is one declarative timed scenario.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Hosts is the synthesized fleet size; Seed pins synthesis, churn and
	// every other random draw.
	Hosts int   `json:"hosts"`
	Seed  int64 `json:"seed"`
	// Topology overrides the built-in three-tier spec. Corpus scenarios
	// embed small zero-drift topologies so the initial fleet is compliant
	// and every alarm is traceable to a step.
	Topology *loadgen.Topology `json:"topology,omitempty"`
	// SweepEvery is the sweep-mode evaluation cadence, Window the
	// push-mode flush cadence; both default to 250ms.
	SweepEvery Duration `json:"sweep_every,omitempty"`
	Window     Duration `json:"window,omitempty"`
	// Duration is the virtual horizon; 0 extends two evaluation periods
	// past the last step so its effects are always observed.
	Duration Duration `json:"duration,omitempty"`
	Steps    []Step   `json:"steps"`
}

// DefaultCadence is the evaluation period used when a spec sets neither
// SweepEvery nor Window.
const DefaultCadence = 250 * time.Millisecond

var statusNames = map[string]bool{"pass": true, "fail": true, "error": true, "incomplete": true}

var opNames = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

// Validate reports the first structural problem with the spec.
func (sp Spec) Validate() error {
	if strings.TrimSpace(sp.Name) == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if sp.Hosts < 1 {
		return fmt.Errorf("scenario %s: hosts %d, need >= 1", sp.Name, sp.Hosts)
	}
	if sp.Topology != nil {
		if err := sp.Topology.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sp.Name, err)
		}
	}
	if sp.SweepEvery < 0 || sp.Window < 0 || sp.Duration < 0 {
		return fmt.Errorf("scenario %s: negative cadence or duration", sp.Name)
	}
	if len(sp.Steps) == 0 {
		return fmt.Errorf("scenario %s: no steps", sp.Name)
	}
	prev := Duration(0)
	for i, st := range sp.Steps {
		if err := sp.validateStep(i, st); err != nil {
			return err
		}
		if st.At < prev {
			return fmt.Errorf("scenario %s: step %d at %v before step %d at %v — steps must be time-ordered",
				sp.Name, i, st.At, i-1, prev)
		}
		prev = st.At
	}
	return nil
}

func (sp Spec) validateStep(i int, st Step) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: step %d (%s): %s", sp.Name, i, st.Kind(), fmt.Sprintf(format, args...))
	}
	if (st.Do == "") == (st.Expect == "") {
		return fmt.Errorf("scenario %s: step %d: exactly one of do/expect must be set", sp.Name, i)
	}
	if st.At < 0 {
		return bad("negative at")
	}
	switch st.Do {
	case "":
	case "install":
		if st.On == "" || st.Package == "" {
			return bad("needs on and package")
		}
	case "remove":
		if st.On == "" || st.Package == "" {
			return bad("needs on and package")
		}
	case "enable", "disable", "flap":
		if st.On == "" || st.Service == "" {
			return bad("needs on and service")
		}
	case "config":
		if st.On == "" || st.File == "" || st.Key == "" {
			return bad("needs on, file and key")
		}
	case "unset-config":
		if st.On == "" || st.File == "" || st.Key == "" {
			return bad("needs on, file and key")
		}
	case "join":
	case "leave", "down", "up":
		if st.On == "" {
			return bad("needs on")
		}
	case "churn":
		if st.Events < 1 {
			return bad("needs events >= 1")
		}
	case "faults":
		if st.On == "" || st.FailFirst < 1 {
			return bad("needs on and fail_first >= 1")
		}
	case "heal":
		if st.On == "" {
			return bad("needs on")
		}
	case "pipeline":
		if st.Commits < 1 {
			return bad("needs commits >= 1")
		}
		if st.GateRecall < 0 || st.GateRecall > 1 {
			return bad("gate_recall %v outside [0,1]", st.GateRecall)
		}
	case "signal":
		if st.Signal == "" {
			return bad("needs signal")
		}
	default:
		return bad("unknown do kind %q", st.Do)
	}
	switch st.Expect {
	case "":
	case "verdict":
		if st.On == "" || st.Finding == "" || !statusNames[st.Status] {
			return bad("needs on, finding and status in {pass, fail, error, incomplete}")
		}
	case "compliance", "alarms", "repairs":
		if !opNames[st.Op] {
			return bad("needs op in {==, !=, <, <=, >, >=}")
		}
	case "degraded":
		if st.On == "" {
			return bad("needs on")
		}
		if st.Value != "" && st.Value != "true" && st.Value != "false" {
			return bad("value must be true or false")
		}
	case "ga":
		if _, err := tears.ParseGA(st.GA); err != nil {
			return bad("%v", err)
		}
	case "gwt":
		scs, err := gwt.ParseScenarios(st.Gherkin)
		if err != nil {
			return bad("%v", err)
		}
		if _, errs := tears.FromScenarios(scs, st.WithinMS); len(errs) > 0 {
			return bad("%v", errs[0])
		}
	default:
		return bad("unknown expect kind %q", st.Expect)
	}
	return nil
}

// Parse decodes and validates one JSON scenario spec.
func Parse(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// cadence resolves the evaluation period for a mode.
func (sp Spec) cadence(push bool) time.Duration {
	if push {
		if sp.Window > 0 {
			return sp.Window.D()
		}
	} else if sp.SweepEvery > 0 {
		return sp.SweepEvery.D()
	}
	return DefaultCadence
}

// horizon resolves the virtual end of the run for a cadence.
func (sp Spec) horizon(cadence time.Duration) time.Duration {
	if sp.Duration > 0 {
		return sp.Duration.D()
	}
	last := time.Duration(0)
	for _, st := range sp.Steps {
		if st.At.D() > last {
			last = st.At.D()
		}
	}
	return last + 2*cadence
}
