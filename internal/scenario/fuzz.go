package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"veridevops/internal/host"
	"veridevops/internal/loadgen"
)

// Scenario fuzzing: random-walk the mutation grammar on the virtual
// clock, execute each generated spec in BOTH evaluation modes, and
// oracle on cross-mode equivalence — the sweep coordinator and the push
// streamer must agree on the final verdict of every (host, finding) pair
// and on final compliance, and neither run may fail an assertion or
// crash. A divergence means the dependency index missed a key, the
// incremental cache replayed stale state, or the executor's fold logic
// is mode-sensitive. Failing step sequences are shrunk (delta-debugging
// over the step list) to a minimal reproducer.
//
// The grammar deliberately excludes fault injection: FailFirst plans are
// call-counted, and the two modes legitimately execute different call
// counts (a sweep re-audits the full catalogue where a delta re-runs a
// subset), so injected-fault verdicts may diverge by design. Leave steps
// stay out of the direct grammar too (churn still exercises membership)
// so selector indices in a shrunk reproducer stay stable.

// fuzzTopology is the small two-class, zero-drift fleet fuzz specs run
// against: compliant at birth, every finding movement is step-driven.
func fuzzTopology() *loadgen.Topology {
	return &loadgen.Topology{
		Classes: []loadgen.HostClass{
			{
				Name: "web", Weight: 3,
				Packages: []loadgen.PackageDist{
					{Name: "web-pkg-00", Weight: 2, Versions: 3},
					{Name: "web-pkg-01", Weight: 1, Versions: 2},
				},
				PackagesPerHost: 2,
				Services: []loadgen.ServiceDist{
					{Name: "web-svc-00", Weight: 1},
				},
				ServicesPerHost: 1,
				ConfigFiles: []loadgen.ConfigDist{
					{Path: "/etc/web/conf-00", Weight: 1, Keys: 4},
				},
				ConfigKeysPerHost: 2,
			},
			{
				Name: "db", Weight: 1,
				Packages: []loadgen.PackageDist{
					{Name: "db-pkg-00", Weight: 1, Versions: 2},
				},
				PackagesPerHost: 1,
				ConfigFiles: []loadgen.ConfigDist{
					{Path: "/etc/db/conf-00", Weight: 1, Keys: 8},
				},
				ConfigKeysPerHost: 3,
			},
		},
		Mix: loadgen.ChurnMix{
			PackageUpgrade: 30, PackageInstall: 8, PackageRemove: 8,
			ServiceFlap: 10, ConfigEdit: 25, HostJoin: 4, HostLeave: 4,
			HostDown: 3, HostUp: 7,
		},
	}
}

// Generate draws one random spec from the mutation grammar,
// deterministic in seed.
func Generate(seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	sp := Spec{
		Name:       fmt.Sprintf("fuzz-%d", seed),
		Hosts:      4 + rng.Intn(6),
		Seed:       seed,
		Topology:   fuzzTopology(),
		SweepEvery: Duration(250 * time.Millisecond),
		Window:     Duration(250 * time.Millisecond),
	}
	n := 5 + rng.Intn(12)
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += time.Duration(50+rng.Intn(400)) * time.Millisecond
		sp.Steps = append(sp.Steps, randomStep(rng, at, sp.Hosts))
	}
	return sp
}

// randomStep draws one mutation from the grammar.
func randomStep(rng *rand.Rand, at time.Duration, hosts int) Step {
	sel := func() string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("#%d", rng.Intn(hosts))
		case 1:
			return fmt.Sprintf("web#%d", rng.Intn(hosts))
		default:
			return fmt.Sprintf("#%d..%d", 0, rng.Intn(hosts))
		}
	}
	st := Step{At: Duration(at)}
	switch rng.Intn(10) {
	case 0:
		st.Do, st.On = "install", sel()
		st.Package = host.BannedPackages[rng.Intn(len(host.BannedPackages))]
	case 1:
		st.Do, st.On = "remove", sel()
		st.Package = host.RequiredPackages[rng.Intn(len(host.RequiredPackages))]
	case 2:
		st.Do, st.On, st.Package = "install", sel(), "web-pkg-00"
		st.Version = fmt.Sprintf("1.%d", rng.Intn(3))
	case 3:
		st.Do, st.On, st.Service = "flap", sel(), "web-svc-00"
	case 4:
		st.Do, st.On = "config", sel()
		if rng.Intn(2) == 0 {
			st.File, st.Key = "/etc/login.defs", "ENCRYPT_METHOD"
			st.Value = []string{"MD5", "SHA512"}[rng.Intn(2)]
		} else {
			st.File, st.Key = "/etc/web/conf-00", fmt.Sprintf("key-%02d", rng.Intn(4))
			st.Value = fmt.Sprintf("v%d", rng.Intn(100))
		}
	case 5:
		st.Do, st.On = "unset-config", sel()
		st.File, st.Key = "/etc/web/conf-00", fmt.Sprintf("key-%02d", rng.Intn(4))
	case 6:
		st.Do = "join"
		st.Class = []string{"web", "db", ""}[rng.Intn(3)]
	case 7:
		st.Do, st.On = "down", sel()
	case 8:
		st.Do, st.On = "up", sel()
	default:
		st.Do, st.Events = "churn", 1+rng.Intn(8)
	}
	return st
}

// Oracle runs one spec in both modes and reports the first divergence or
// failure ("" = equivalent and clean). This is the fuzz predicate, and
// also usable directly on corpus specs.
func Oracle(sp Spec, opts Options) string {
	opts.Push = false
	sweep, err := Run(sp, opts)
	if err != nil {
		return fmt.Sprintf("sweep mode error: %v", err)
	}
	opts.Push = true
	push, err := Run(sp, opts)
	if err != nil {
		return fmt.Sprintf("push mode error: %v", err)
	}
	if sweep.Failed() {
		f := sweep.Failures()[0]
		return fmt.Sprintf("sweep mode failed step %d (%s): %s", f.Index, f.Kind, f.Detail)
	}
	if push.Failed() {
		f := push.Failures()[0]
		return fmt.Sprintf("push mode failed step %d (%s): %s", f.Index, f.Kind, f.Detail)
	}
	if d := diffStrings(sweep.FinalState, push.FinalState); d != "" {
		return "final verdicts diverge between sweep and push: " + d
	}
	if !cmp(sweep.FinalCompliance, "==", push.FinalCompliance) {
		return fmt.Sprintf("final compliance diverges: sweep %.6f vs push %.6f",
			sweep.FinalCompliance, push.FinalCompliance)
	}
	return ""
}

// diffStrings reports the first line present in exactly one of two
// sorted string sets.
func diffStrings(a, b []string) string {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i, j = i+1, j+1
		case a[i] < b[j]:
			return fmt.Sprintf("only in sweep: %q", a[i])
		default:
			return fmt.Sprintf("only in push: %q", b[j])
		}
	}
	if i < len(a) {
		return fmt.Sprintf("only in sweep: %q", a[i])
	}
	if j < len(b) {
		return fmt.Sprintf("only in push: %q", b[j])
	}
	return ""
}

// Shrink minimizes a failing spec under pred (pred returns a non-empty
// failure description for specs that still fail): delta debugging over
// the step list — drop halves, then quarters, down to single steps —
// until no single-step removal preserves the failure. Steps keep their
// original At instants, so the reproducer replays the same timeline.
func Shrink(sp Spec, pred func(Spec) string) Spec {
	steps := sp.Steps
	try := func(candidate []Step) bool {
		c := sp
		c.Steps = candidate
		return len(candidate) > 0 && pred(c) != ""
	}
	chunk := (len(steps) + 1) / 2
	for chunk > 0 {
		removed := true
		for removed {
			removed = false
			for lo := 0; lo < len(steps); lo += chunk {
				hi := lo + chunk
				if hi > len(steps) {
					hi = len(steps)
				}
				candidate := append(append([]Step{}, steps[:lo]...), steps[hi:]...)
				if try(candidate) {
					steps = candidate
					removed = true
					break
				}
			}
		}
		chunk /= 2
	}
	sp.Steps = steps
	return sp
}

// FuzzResult summarizes one fuzzing campaign.
type FuzzResult struct {
	Iterations int
	// Seed of the first failing spec; Failure its oracle description.
	FailedSeed int64
	Failure    string
	// Minimal is the shrunk reproducer (valid only when Failure != "").
	Minimal Spec
}

// Failed reports whether the campaign found a failure.
func (fr FuzzResult) Failed() bool { return fr.Failure != "" }

// String renders the campaign outcome.
func (fr FuzzResult) String() string {
	if !fr.Failed() {
		return fmt.Sprintf("fuzz: %d iteration(s), no divergence", fr.Iterations)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz: seed %d fails after %d iteration(s): %s\n", fr.FailedSeed, fr.Iterations, fr.Failure)
	fmt.Fprintf(&b, "minimal reproducer (%d step(s)):\n", len(fr.Minimal.Steps))
	for i, st := range fr.Minimal.Steps {
		fmt.Fprintf(&b, "  #%d t=%v %s on=%q pkg=%q svc=%q file=%q key=%q value=%q events=%d\n",
			i, st.At.D(), st.Kind(), st.On, st.Package, st.Service, st.File, st.Key, st.Value, st.Events)
	}
	return b.String()
}

// Fuzz runs n generated specs through the cross-mode oracle, stopping at
// the first failure and shrinking it to a minimal reproducer.
func Fuzz(n int, seed int64, opts Options) FuzzResult {
	fr := FuzzResult{}
	for i := 0; i < n; i++ {
		fr.Iterations++
		sp := Generate(seed + int64(i))
		if msg := Oracle(sp, opts); msg != "" {
			fr.FailedSeed = seed + int64(i)
			fr.Failure = msg
			fr.Minimal = Shrink(sp, func(c Spec) string { return Oracle(c, opts) })
			return fr
		}
	}
	return fr
}
