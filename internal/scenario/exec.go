package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/fleet"
	"veridevops/internal/gwt"
	"veridevops/internal/host"
	"veridevops/internal/loadgen"
	"veridevops/internal/pipeline"
	"veridevops/internal/resa"
	"veridevops/internal/stig"
	"veridevops/internal/tears"
	"veridevops/internal/telemetry"
	"veridevops/internal/trace"
)

// Options configures one scenario execution.
type Options struct {
	// Push evaluates through a fleet.Streamer (dependency-index deltas on
	// a flush cadence) instead of batch incremental sweeps.
	Push bool
	// Shards and Workers size the fleet evaluation pools.
	Shards, Workers int
	// VerifyReads runs the dynamic declared-reads oracle
	// (fleet.VerifyReads) over every host's final catalogue after the
	// horizon: undeclared recorded reads fail the run (push-mode
	// unsoundness observed on this very fleet), overdeclared and
	// unlocalized findings are recorded as advisory.
	VerifyReads bool
	// Trace, when non-nil, records the underlying sweep/flush span trees.
	Trace *telemetry.Tracer
}

func (o Options) normalized() Options {
	if o.Shards < 1 {
		o.Shards = 4
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// executor is the per-run state: the fleet under mutation, the evaluator
// (coordinator or streamer), and the executor-owned compliance view.
//
// Verdict state and alarm/repair episodes are tracked here, from the
// full merged per-host reports both evaluators return — not read from
// the streamer's own episode counters — so the two modes expose one
// comparable accounting, immune to the episode resets a re-Watch causes.
type executor struct {
	spec Spec
	opts Options
	mode string

	fleet *loadgen.Fleet
	coord *fleet.Coordinator
	str   *fleet.Streamer
	churn *loadgen.Churn

	// status is the live verdict view: host -> finding -> final status.
	status map[string]map[string]core.CheckStatus
	// viol marks open violation episodes (host -> finding); degraded the
	// hosts whose last report was all-ERROR.
	viol     map[string]map[string]bool
	degraded map[string]bool
	alarms   int
	repairs  int
	// opened/closed count the episodes the current tick moved, for the
	// alarm/repair pulse signals.
	opened, closed int

	tr  *trace.Trace
	res *Result
}

// Run executes one scenario spec and returns its structured result. The
// run is deterministic in (spec, opts.Push): identical inputs yield
// byte-identical Report() renderings and Schedule logs.
func Run(sp Spec, opts Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	opts = opts.normalized()
	top := loadgen.DefaultTopology()
	if sp.Topology != nil {
		top = *sp.Topology
	}
	f, err := loadgen.Synthesize(top, sp.Hosts, sp.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
	}

	ex := &executor{
		spec:     sp,
		opts:     opts,
		mode:     "sweep",
		fleet:    f,
		coord:    fleet.NewCoordinator(),
		status:   map[string]map[string]core.CheckStatus{},
		viol:     map[string]map[string]bool{},
		degraded: map[string]bool{},
		tr:       trace.New(),
	}
	if opts.Push {
		ex.mode = "push"
		ex.str = fleet.NewStreamer(ex.coord, fleet.StreamOptions{
			Mode:    core.CheckOnly,
			Shards:  opts.Shards,
			Workers: opts.Workers,
			Dedup:   true,
			Trace:   opts.Trace,
		})
		for _, h := range f.Hosts() {
			ex.str.Watch(h.Target(), h.Linux.Log())
		}
	}
	ex.res = &Result{Spec: sp, Mode: ex.mode}

	cadence := sp.cadence(opts.Push)
	horizon := sp.horizon(cadence)

	// Deferred TEARS assertions: evaluated over the completed trace.
	type gaStep struct {
		index int
		gas   []tears.GA
	}
	var deferred []gaStep

	nextTick := time.Duration(0)
	for i, st := range sp.Steps {
		for nextTick <= st.At.D() && nextTick <= horizon {
			ex.tick(nextTick)
			nextTick += cadence
		}
		if st.Expect == "ga" || st.Expect == "gwt" {
			gas, err := stepGAs(st)
			if err != nil {
				// Validate caught malformed GAs already; this is defensive.
				return nil, fmt.Errorf("scenario %s: step %d: %w", sp.Name, i, err)
			}
			deferred = append(deferred, gaStep{index: i, gas: gas})
			ex.record(StepResult{Index: i, At: st.At, Kind: st.Kind(), OK: true,
				Detail: fmt.Sprintf("deferred: %d guarded assertion(s) evaluated at end of run", len(gas))})
			continue
		}
		ex.step(i, st)
	}
	for nextTick <= horizon {
		ex.tick(nextTick)
		nextTick += cadence
	}
	ex.tr.SetEnd(ms(horizon))

	for _, d := range deferred {
		ex.evalGAs(d.index, d.gas)
	}
	if opts.VerifyReads {
		ex.verifyReads()
	}

	ex.res.Ticks = len(ex.res.Schedule) - len(ex.res.Steps)
	ex.res.Alarms, ex.res.Repairs = ex.alarms, ex.repairs
	ex.res.FinalCompliance = ex.compliance()
	ex.res.FinalState = ex.finalState()
	ex.res.Trace = ex.tr
	sort.Slice(ex.res.Steps, func(a, b int) bool { return ex.res.Steps[a].Index < ex.res.Steps[b].Index })
	return ex.res, nil
}

// ms converts a virtual instant to trace ticks (milliseconds).
func ms(d time.Duration) trace.Time { return int64(d / time.Millisecond) }

// stepGAs materializes the guarded assertions of a ga/gwt expect step.
func stepGAs(st Step) ([]tears.GA, error) {
	if st.Expect == "ga" {
		ga, err := tears.ParseGA(st.GA)
		if err != nil {
			return nil, err
		}
		return []tears.GA{ga}, nil
	}
	scs, err := gwt.ParseScenarios(st.Gherkin)
	if err != nil {
		return nil, err
	}
	gas, errs := tears.FromScenarios(scs, st.WithinMS)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return gas, nil
}

// tick runs one evaluation pass at virtual instant now, folds the fresh
// reports into the live view and samples the compliance signals.
func (ex *executor) tick(now time.Duration) {
	ex.opened, ex.closed = 0, 0
	if ex.str != nil {
		fr := ex.str.Flush(now)
		for _, d := range fr.Hosts {
			ex.fold(d.Host, d.Result.Report)
		}
	} else {
		rep, _ := ex.coord.Sweep(ex.fleet.Targets(), fleet.Options{
			Mode:        core.CheckOnly,
			Shards:      ex.opts.Shards,
			Workers:     ex.opts.Workers,
			Incremental: true,
			Dedup:       true,
			Trace:       ex.opts.Trace,
		})
		for _, hr := range rep.Hosts {
			ex.fold(hr.Target, hr.Report)
		}
	}

	t := ms(now)
	comp := ex.compliance()
	failing, incomplete := ex.countNonPass()
	ex.tr.SetNum("compliance", t, comp)
	ex.tr.SetNum("failing", t, float64(failing))
	ex.tr.SetNum("incomplete", t, float64(incomplete))
	ex.tr.SetNum("alarms", t, float64(ex.alarms))
	ex.tr.SetNum("repairs", t, float64(ex.repairs))
	ex.tr.SetBool("alarm", t, ex.opened > 0)
	ex.tr.SetBool("repair", t, ex.closed > 0)
	ex.log("t=%v tick compliance=%.4f failing=%d incomplete=%d alarms=%d repairs=%d",
		now, comp, failing, incomplete, ex.alarms, ex.repairs)
}

// fold merges one host report into the live view and moves its violation
// episodes: a finding entering non-PASS opens one episode (one alarm), a
// finding returning to PASS closes it (one repair) — the monitor
// package's dedup discipline, applied identically in both modes.
func (ex *executor) fold(name string, rep core.Report) {
	hs := ex.status[name]
	if hs == nil {
		hs = map[string]core.CheckStatus{}
		ex.status[name] = hs
	}
	hv := ex.viol[name]
	if hv == nil {
		hv = map[string]bool{}
		ex.viol[name] = hv
	}
	for _, r := range rep.Results {
		hs[r.FindingID] = r.After
		if r.After != core.CheckPass {
			if !hv[r.FindingID] {
				hv[r.FindingID] = true
				ex.alarms++
				ex.opened++
			}
		} else if hv[r.FindingID] {
			delete(hv, r.FindingID)
			ex.repairs++
			ex.closed++
		}
	}
	ex.degraded[name] = degradedReport(rep)
}

// degradedReport mirrors the fleet package's judgement: at least one
// verdict and every final status ERROR.
func degradedReport(rep core.Report) bool {
	if len(rep.Results) == 0 {
		return false
	}
	for _, r := range rep.Results {
		if r.After != core.CheckError {
			return false
		}
	}
	return true
}

// verifyReads runs the dynamic declared-reads oracle over the fleet's
// state at the horizon: each host's current catalogue re-executes with
// a host.ReadRecorder attached and the recorded state keys are compared
// against the CheckStateKeys declarations (fleet.VerifyReads). Only
// undeclared recorded reads are fatal — they are the reads the
// dependency index would miss, i.e. observed push-mode unsoundness.
// Overdeclared keys (short-circuiting on the current state) and
// unlocalized checks (fault-wrapped catalogues drop the KeyReader
// surface) stay advisory. Down hosts record nothing and therefore
// surface at worst as advisory too.
func (ex *executor) verifyReads() {
	hosts := append([]*loadgen.Host(nil), ex.fleet.Hosts()...)
	sort.Slice(hosts, func(a, b int) bool { return hosts[a].Name < hosts[b].Name })
	fatal := 0
	for _, h := range hosts {
		for _, v := range fleet.VerifyReads(h.Catalog(), h.Linux) {
			if v.Fatal() {
				fatal++
			}
			ex.res.ReadViolations = append(ex.res.ReadViolations, fmt.Sprintf("%s: %s", h.Name, v))
		}
	}
	ex.res.FatalReadViolations = fatal
	ex.log("verify-reads: %d violation(s), %d fatal, over %d host(s)",
		len(ex.res.ReadViolations), fatal, len(hosts))
}

// prune drops a departed host from the live view. Its open episodes are
// orphaned: the alarms stay counted (they happened) but can no longer be
// repaired.
func (ex *executor) prune(name string) {
	delete(ex.status, name)
	delete(ex.viol, name)
	delete(ex.degraded, name)
}

// compliance is the PASS fraction over every verdict in the live view;
// an empty (not yet evaluated) view is fully compliant, matching
// fleet.FleetReport.Compliance.
func (ex *executor) compliance() float64 {
	pass, total := 0, 0
	for _, hs := range ex.status {
		for _, st := range hs {
			total++
			if st == core.CheckPass {
				pass++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(pass) / float64(total)
}

func (ex *executor) countNonPass() (failing, incomplete int) {
	for _, hs := range ex.status {
		for _, st := range hs {
			switch st {
			case core.CheckPass:
			case core.CheckFail:
				failing++
			default:
				incomplete++
			}
		}
	}
	return
}

// finalState renders the live view as sorted "host finding status"
// lines — the cross-mode equivalence surface the fuzzer oracles on.
func (ex *executor) finalState() []string {
	var out []string
	for name, hs := range ex.status {
		for id, st := range hs {
			out = append(out, fmt.Sprintf("%s %s %s", name, id, st))
		}
	}
	sort.Strings(out)
	return out
}

func (ex *executor) record(sr StepResult) {
	ex.res.Steps = append(ex.res.Steps, sr)
	verdict := "ok"
	if sr.Skipped {
		verdict = "skip"
	} else if !sr.OK {
		verdict = "FAIL"
	}
	ex.log("t=%v step#%d %s [%s] %s: %s", sr.At.D(), sr.Index, sr.Kind, sr.Target, verdict, sr.Detail)
}

func (ex *executor) log(format string, args ...any) {
	ex.res.Schedule = append(ex.res.Schedule, fmt.Sprintf(format, args...))
}

// step executes one mutation or immediate assertion.
func (ex *executor) step(i int, st Step) {
	sr := StepResult{Index: i, At: st.At, Kind: st.Kind(), Target: st.On, OK: true}
	if st.Do != "" {
		ex.mutate(&sr, st, i)
	} else {
		ex.assert(&sr, st)
	}
	ex.record(sr)
}

// resolve expands a host selector against the current membership, in
// name order. An empty result is not an error here; mutation steps skip,
// assertion steps fail.
func (ex *executor) resolve(sel string) []*loadgen.Host {
	hosts := append([]*loadgen.Host(nil), ex.fleet.Hosts()...)
	sort.Slice(hosts, func(a, b int) bool { return hosts[a].Name < hosts[b].Name })
	if sel == "*" {
		return hosts
	}
	if h, ok := ex.fleet.Get(sel); ok {
		return []*loadgen.Host{h}
	}
	pool := hosts
	idx := sel
	if cut := strings.IndexByte(sel, '#'); cut >= 0 {
		class := sel[:cut]
		idx = sel[cut+1:]
		if class != "" {
			pool = pool[:0:0]
			for _, h := range hosts {
				if h.Class == class {
					pool = append(pool, h)
				}
			}
		}
	} else {
		// A bare token that is not a member name selects a whole class.
		var members []*loadgen.Host
		for _, h := range hosts {
			if h.Class == sel {
				members = append(members, h)
			}
		}
		return members
	}
	lo, hi := -1, -1
	if cut := strings.Index(idx, ".."); cut >= 0 {
		fmt.Sscanf(idx[:cut], "%d", &lo)
		fmt.Sscanf(idx[cut+2:], "%d", &hi)
	} else {
		fmt.Sscanf(idx, "%d", &lo)
		hi = lo
	}
	if lo < 0 || hi < lo || lo >= len(pool) {
		return nil
	}
	if hi >= len(pool) {
		hi = len(pool) - 1
	}
	return pool[lo : hi+1]
}

// onHost applies one mutation, absorbing the unreachable-host panic into
// a skip: mutating a down host is a legal scenario beat (the operator's
// change did not land), not an executor crash.
func onHost(h *loadgen.Host, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if r == host.ErrUnreachable {
				err = host.ErrUnreachable
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

// mutate executes a do-step.
func (ex *executor) mutate(sr *StepResult, st Step, stepIndex int) {
	// Single-host-at-a-time kinds share the apply loop: resolve, mutate
	// each target, record how many landed vs skipped (down hosts).
	apply := func(fn func(h *loadgen.Host)) {
		sel := ex.resolve(st.On)
		if len(sel) == 0 {
			sr.Skipped = true
			sr.OK = true
			sr.Detail = fmt.Sprintf("selector %q matched no host", st.On)
			return
		}
		applied, skipped := 0, 0
		for _, h := range sel {
			if onHost(h, func() { fn(h) }) != nil {
				skipped++
			} else {
				applied++
			}
		}
		sr.Detail = fmt.Sprintf("%d host(s), %d unreachable", applied, skipped)
		sr.Skipped = applied == 0
	}

	switch st.Do {
	case "install":
		v := st.Version
		if v == "" {
			v = "1.0"
		}
		apply(func(h *loadgen.Host) { h.Linux.Install(st.Package, v) })
		sr.Detail = fmt.Sprintf("install %s=%s: %s", st.Package, v, sr.Detail)
	case "remove":
		apply(func(h *loadgen.Host) { h.Linux.Remove(st.Package) })
		sr.Detail = fmt.Sprintf("remove %s: %s", st.Package, sr.Detail)
	case "enable":
		apply(func(h *loadgen.Host) { h.Linux.EnableService(st.Service) })
		sr.Detail = fmt.Sprintf("enable %s: %s", st.Service, sr.Detail)
	case "disable":
		apply(func(h *loadgen.Host) { h.Linux.DisableService(st.Service) })
		sr.Detail = fmt.Sprintf("disable %s: %s", st.Service, sr.Detail)
	case "flap":
		apply(func(h *loadgen.Host) {
			h.Linux.DisableService(st.Service)
			h.Linux.EnableService(st.Service)
		})
		sr.Detail = fmt.Sprintf("flap %s: %s", st.Service, sr.Detail)
	case "config":
		apply(func(h *loadgen.Host) { h.Linux.SetConfig(st.File, st.Key, st.Value) })
		sr.Detail = fmt.Sprintf("set %s:%s=%s: %s", st.File, st.Key, st.Value, sr.Detail)
	case "unset-config":
		apply(func(h *loadgen.Host) { h.Linux.UnsetConfig(st.File, st.Key) })
		sr.Detail = fmt.Sprintf("unset %s:%s: %s", st.File, st.Key, sr.Detail)
	case "join":
		var h *loadgen.Host
		if st.Class != "" {
			h = ex.fleet.JoinClass(st.Class)
		} else {
			h = ex.fleet.Join()
		}
		if h == nil {
			sr.Skipped = true
			sr.Detail = fmt.Sprintf("no class %q in topology", st.Class)
			return
		}
		if ex.str != nil {
			ex.str.Watch(h.Target(), h.Linux.Log())
		}
		sr.Target = h.Name
		sr.Detail = fmt.Sprintf("joined %s (class %s), fleet now %d", h.Name, h.Class, ex.fleet.Size())
	case "leave":
		sel := ex.resolve(st.On)
		if len(sel) == 0 {
			sr.Skipped = true
			sr.Detail = fmt.Sprintf("selector %q matched no host", st.On)
			return
		}
		var names []string
		for _, h := range sel {
			if ex.fleet.Size() <= 1 {
				break // never shrink to empty
			}
			name := h.Name
			ex.fleet.Leave(name)
			if ex.str != nil {
				ex.str.Unwatch(name)
			}
			ex.prune(name)
			names = append(names, name)
		}
		sr.Skipped = len(names) == 0
		sr.Detail = fmt.Sprintf("left %s, fleet now %d", strings.Join(names, ","), ex.fleet.Size())
	case "down", "up":
		down := st.Do == "down"
		sel := ex.resolve(st.On)
		if len(sel) == 0 {
			sr.Skipped = true
			sr.Detail = fmt.Sprintf("selector %q matched no host", st.On)
			return
		}
		n := 0
		for _, h := range sel {
			if ex.fleet.SetDown(h.Name, down) {
				n++
			}
		}
		sr.Skipped = n == 0
		sr.Detail = fmt.Sprintf("%d host(s) transitioned, %d down fleet-wide", n, ex.fleet.DownCount())
	case "churn":
		if ex.churn == nil {
			top := ex.fleet.Topology
			ex.churn = loadgen.NewChurn(ex.fleet, top.Mix, ex.spec.Seed+1)
		}
		applied := 0
		for n := 0; n < st.Events; n++ {
			ev, ok := ex.churn.Step()
			if !ok {
				continue
			}
			applied++
			switch ev.Kind {
			case loadgen.HostJoin:
				if ex.str != nil {
					if h, ok := ex.fleet.Get(ev.Host); ok {
						ex.str.Watch(h.Target(), h.Linux.Log())
					}
				}
			case loadgen.HostLeave:
				if ex.str != nil {
					ex.str.Unwatch(ev.Host)
				}
				ex.prune(ev.Host)
			}
		}
		sr.Target = "fleet"
		sr.Detail = fmt.Sprintf("%d/%d churn events applied, fleet now %d", applied, st.Events, ex.fleet.Size())
	case "faults":
		ex.withCatalog(sr, st, func(h *loadgen.Host, seed int64) *core.Catalog {
			nc := core.NewCatalog()
			for j, r := range h.Catalog().All() {
				nc.MustRegister(core.InjectFaults(r,
					engine.NewFaultInjector(seed+int64(j), engine.FaultPlan{FailFirst: st.FailFirst})))
			}
			return nc
		}, stepIndex)
		sr.Detail = fmt.Sprintf("fault plan fail_first=%d: %s", st.FailFirst, sr.Detail)
	case "heal":
		ex.withCatalog(sr, st, func(h *loadgen.Host, _ int64) *core.Catalog {
			return stig.UbuntuCatalog(h.Linux)
		}, stepIndex)
		sr.Detail = "restored pristine catalogue: " + sr.Detail
	case "pipeline":
		ex.pipelineStep(sr, st, stepIndex)
	case "signal":
		name := resa.Slug(st.Signal)
		ex.tr.SetNum(name, ms(st.At.D()), st.Num)
		sr.Target = name
		sr.Detail = fmt.Sprintf("signal %s=%v at t=%d ms", name, st.Num, ms(st.At.D()))
	}
}

// withCatalog swaps each selected host's catalogue and forces its next
// evaluation: the swap does not advance the host's event-log version, so
// the incremental cache entry is dropped and (in push mode) the host is
// re-watched — an unprimed watch runs the full catalogue on the next
// flush.
func (ex *executor) withCatalog(sr *StepResult, st Step, build func(h *loadgen.Host, seed int64) *core.Catalog, stepIndex int) {
	sel := ex.resolve(st.On)
	if len(sel) == 0 {
		sr.Skipped = true
		sr.Detail = fmt.Sprintf("selector %q matched no host", st.On)
		return
	}
	seed := st.Seed
	if seed == 0 {
		seed = ex.spec.Seed + int64(1000*(stepIndex+1))
	}
	for _, h := range sel {
		h.SetCatalog(build(h, seed))
		ex.coord.Invalidate(h.Name)
		if ex.str != nil {
			ex.str.Watch(h.Target(), h.Linux.Log())
		}
	}
	sr.Detail = fmt.Sprintf("%d host(s)", len(sel))
}

// pipelineStep commits a change batch through the DevOps pipeline
// simulation; violations that ship past the development gate land as
// banned-package drift on the selected hosts.
func (ex *executor) pipelineStep(sr *StepResult, st Step, stepIndex int) {
	seed := st.Seed
	if seed == 0 {
		seed = ex.spec.Seed + int64(1000*(stepIndex+1))
	}
	recall := st.GateRecall
	if recall == 0 {
		recall = 0.9
	}
	res := pipeline.Simulate(pipeline.Config{
		Prevention: true, Protection: true,
		GateRecall: recall, GateLatency: 5, BuildLatency: 10,
		MonitorPeriod: 50, Interarrival: 100,
		PCode: 0.3, PDrift: 0.05,
	}, st.Commits, rand.New(rand.NewSource(seed)))
	dev, ops, audit, escaped := res.Counts()
	shipped := ops + audit + escaped // violations the dev gate missed

	sel := ex.resolve(st.On)
	landed := 0
	if len(sel) > 0 {
		for k := 0; k < shipped; k++ {
			h := sel[k%len(sel)]
			pkg := host.BannedPackages[k%len(host.BannedPackages)]
			if onHost(h, func() { h.Linux.Install(pkg, "0.regression") }) == nil {
				landed++
			}
		}
	}
	sr.Target = st.On
	sr.Detail = fmt.Sprintf("%d commits: dev=%d ops=%d audit=%d escaped=%d; %d regression(s) shipped to hosts",
		st.Commits, dev, ops, audit, escaped, landed)
	sr.Skipped = shipped > 0 && landed == 0 && len(sel) == 0
}

// assert executes an immediate expect-step against the live view.
func (ex *executor) assert(sr *StepResult, st Step) {
	switch st.Expect {
	case "verdict":
		sel := ex.resolve(st.On)
		if len(sel) == 0 {
			sr.OK = false
			sr.Detail = fmt.Sprintf("selector %q matched no host", st.On)
			return
		}
		want := parseStatus(st.Status)
		var bad []string
		for _, h := range sel {
			got, ok := ex.status[h.Name][st.Finding]
			if !ok {
				bad = append(bad, fmt.Sprintf("%s: no verdict for %s yet", h.Name, st.Finding))
			} else if got != want {
				bad = append(bad, fmt.Sprintf("%s: %s is %s, want %s", h.Name, st.Finding, got, want))
			}
		}
		sr.OK = len(bad) == 0
		if sr.OK {
			sr.Detail = fmt.Sprintf("%d host(s): %s = %s", len(sel), st.Finding, want)
		} else {
			sr.Detail = strings.Join(bad, "; ")
		}
	case "compliance":
		got := ex.compliance()
		sr.OK = cmp(got, st.Op, st.Num)
		sr.Detail = fmt.Sprintf("compliance %.4f %s %v", got, st.Op, st.Num)
	case "alarms":
		got := float64(ex.alarms)
		sr.OK = cmp(got, st.Op, st.Num)
		sr.Detail = fmt.Sprintf("alarms %d %s %v", ex.alarms, st.Op, st.Num)
	case "repairs":
		got := float64(ex.repairs)
		sr.OK = cmp(got, st.Op, st.Num)
		sr.Detail = fmt.Sprintf("repairs %d %s %v", ex.repairs, st.Op, st.Num)
	case "degraded":
		sel := ex.resolve(st.On)
		if len(sel) == 0 {
			sr.OK = false
			sr.Detail = fmt.Sprintf("selector %q matched no host", st.On)
			return
		}
		want := st.Value != "false"
		var bad []string
		for _, h := range sel {
			if ex.degraded[h.Name] != want {
				bad = append(bad, fmt.Sprintf("%s: degraded=%v, want %v", h.Name, ex.degraded[h.Name], want))
			}
		}
		sr.OK = len(bad) == 0
		if sr.OK {
			sr.Detail = fmt.Sprintf("%d host(s) degraded=%v", len(sel), want)
		} else {
			sr.Detail = strings.Join(bad, "; ")
		}
	}
}

// evalGAs evaluates a deferred ga/gwt step over the completed trace and
// rewrites its provisional step result. A vacuous pass (guard never
// held) fails the step: an assertion that was never exercised gives no
// confidence and usually means a marker signal was never emitted.
func (ex *executor) evalGAs(index int, gas []tears.GA) {
	var details []string
	ok := true
	for _, ga := range gas {
		v := tears.Evaluate(ex.tr, ga)
		ex.res.GAs = append(ex.res.GAs, GAResult{Step: index, Verdict: v})
		switch {
		case !v.Passed():
			ok = false
			details = append(details, fmt.Sprintf("%s: FAIL (%d violation(s), first at t=%d deadline t=%d)",
				ga.Name, len(v.Violations), v.Violations[0].At, v.Violations[0].Deadline))
		case v.Vacuous():
			ok = false
			details = append(details, fmt.Sprintf("%s: VACUOUS (guard never held)", ga.Name))
		default:
			details = append(details, fmt.Sprintf("%s: PASS (%d activation(s))", ga.Name, v.Activations))
		}
	}
	for i := range ex.res.Steps {
		if ex.res.Steps[i].Index == index {
			ex.res.Steps[i].OK = ok
			ex.res.Steps[i].Detail = strings.Join(details, "; ")
		}
	}
}

func parseStatus(s string) core.CheckStatus {
	switch s {
	case "pass":
		return core.CheckPass
	case "fail":
		return core.CheckFail
	case "error":
		return core.CheckError
	default:
		return core.CheckIncomplete
	}
}

// cmp compares with a small epsilon on equality so exact-fraction
// assertions (compliance == 1) survive float arithmetic.
func cmp(got float64, op string, want float64) bool {
	const eps = 1e-9
	switch op {
	case "==":
		return got >= want-eps && got <= want+eps
	case "!=":
		return got < want-eps || got > want+eps
	case "<":
		return got < want
	case "<=":
		return got <= want+eps
	case ">":
		return got > want
	case ">=":
		return got >= want-eps
	}
	return false
}
