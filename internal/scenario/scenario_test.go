package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"veridevops/internal/loadgen"
)

func at(msec int) Duration { return Duration(time.Duration(msec) * time.Millisecond) }

// testSpec builds a spec over the small zero-drift fuzz topology so every
// verdict movement is traceable to a step.
func testSpec(name string, hosts int, seed int64, steps []Step) Spec {
	return Spec{
		Name:       name,
		Hosts:      hosts,
		Seed:       seed,
		Topology:   fuzzTopology(),
		SweepEvery: at(250),
		Window:     at(250),
		Steps:      steps,
	}
}

func TestDurationJSON(t *testing.T) {
	d := at(1500)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1.5s"` {
		t.Fatalf("marshal: got %s, want %q", b, "1.5s")
	}
	var back Duration
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip: got %v, want %v", back, d)
	}
	if err := back.UnmarshalJSON([]byte(`"not-a-duration"`)); err == nil {
		t.Fatal("bad duration string accepted")
	}
	// A bare number decodes as nanoseconds (round-tripped zero).
	if err := back.UnmarshalJSON([]byte(`250000000`)); err != nil {
		t.Fatal(err)
	}
	if back.D() != 250*time.Millisecond {
		t.Fatalf("numeric decode: got %v", back.D())
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown field", `{"name":"x","hosts":2,"bogus":1,"steps":[{"at":"1s","do":"join"}]}`, "unknown field"},
		{"no name", `{"hosts":2,"steps":[{"at":"1s","do":"join"}]}`, "no name"},
		{"no steps", `{"name":"x","hosts":2}`, "no steps"},
		{"zero hosts", `{"name":"x","hosts":0,"steps":[{"at":"1s","do":"join"}]}`, "hosts 0"},
		{"unordered", `{"name":"x","hosts":2,"steps":[{"at":"2s","do":"join"},{"at":"1s","do":"join"}]}`, "time-ordered"},
		{"do and expect", `{"name":"x","hosts":2,"steps":[{"at":"1s","do":"join","expect":"alarms","op":"=="}]}`, "exactly one"},
		{"neither", `{"name":"x","hosts":2,"steps":[{"at":"1s"}]}`, "exactly one"},
		{"unknown do", `{"name":"x","hosts":2,"steps":[{"at":"1s","do":"reboot"}]}`, "unknown do kind"},
		{"unknown expect", `{"name":"x","hosts":2,"steps":[{"at":"1s","expect":"happiness"}]}`, "unknown expect kind"},
		{"install no package", `{"name":"x","hosts":2,"steps":[{"at":"1s","do":"install","on":"*"}]}`, "needs on and package"},
		{"verdict bad status", `{"name":"x","hosts":2,"steps":[{"at":"1s","expect":"verdict","on":"*","finding":"V-1","status":"meh"}]}`, "status"},
		{"compliance bad op", `{"name":"x","hosts":2,"steps":[{"at":"1s","expect":"compliance","op":"~="}]}`, "op"},
		{"bad ga", `{"name":"x","hosts":2,"steps":[{"at":"1s","expect":"ga","ga":"nonsense"}]}`, "ga"},
		{"bad gherkin", `{"name":"x","hosts":2,"steps":[{"at":"1s","expect":"gwt","gherkin":"Given \nThen x"}]}`, "gwt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("accepted: %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseAcceptsValidSpec(t *testing.T) {
	sp, err := Parse(strings.NewReader(`{
		"name": "ok", "hosts": 3, "seed": 7,
		"sweep_every": "100ms",
		"steps": [
			{"at": "200ms", "do": "config", "on": "#0", "file": "/etc/login.defs", "key": "ENCRYPT_METHOD", "value": "MD5"},
			{"at": "1s", "expect": "compliance", "op": "<", "num": 1}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.SweepEvery.D() != 100*time.Millisecond || len(sp.Steps) != 2 {
		t.Fatalf("decoded spec wrong: %+v", sp)
	}
	if sp.Steps[0].At.D() != 200*time.Millisecond {
		t.Fatalf("step at: %v", sp.Steps[0].At)
	}
}

func TestResolveSelectors(t *testing.T) {
	f, err := loadgen.Synthesize(*fuzzTopology(), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	ex := &executor{fleet: f}

	all := ex.resolve("*")
	if len(all) != 8 {
		t.Fatalf("* matched %d hosts", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("* not in name order")
		}
	}
	web, db := ex.resolve("web"), ex.resolve("db")
	if len(web)+len(db) != 8 {
		t.Fatalf("class partition %d+%d != 8", len(web), len(db))
	}
	if len(web) == 0 {
		t.Fatal("no web hosts at seed 42")
	}
	if got := ex.resolve("web#0"); len(got) != 1 || got[0].Name != web[0].Name {
		t.Fatalf("web#0: %+v", got)
	}
	if got := ex.resolve("#0..2"); len(got) != 3 || got[0].Name != all[0].Name {
		t.Fatalf("#0..2 matched %d", len(got))
	}
	// Range end clamps to fleet size.
	if got := ex.resolve("#6..99"); len(got) != 2 {
		t.Fatalf("#6..99 matched %d, want 2", len(got))
	}
	if got := ex.resolve(all[3].Name); len(got) != 1 || got[0] != all[3] {
		t.Fatal("exact-name lookup failed")
	}
	for _, bad := range []string{"#99", "ghost", "ghost#0", "#-1", "#x"} {
		if got := ex.resolve(bad); len(got) != 0 {
			t.Fatalf("%q matched %d hosts", bad, len(got))
		}
	}
}

// driftSpec is the canonical incident shape: a config drift lands, is
// detected within a bound, repaired, and the fleet returns to full
// compliance. The gwt step routes through the Gherkin bridge with
// tab-separated keywords, covering the whitespace fix end to end.
func driftSpec() Spec {
	return testSpec("drift", 4, 11, []Step{
		{At: at(200), Do: "signal", Signal: "drift started", Num: 1},
		{At: at(200), Do: "config", On: "#0", File: "/etc/login.defs", Key: "ENCRYPT_METHOD", Value: "MD5"},
		{At: at(1000), Expect: "verdict", On: "#0", Finding: "V-219177", Status: "fail"},
		{At: at(1000), Expect: "alarms", Op: "==", Num: 1},
		{At: at(1000), Expect: "compliance", Op: "<", Num: 1},
		{At: at(1100), Expect: "ga", GA: "GA detect: when drift_started then failing > 0 within 600 ms"},
		{At: at(1100), Expect: "gwt",
			Gherkin:  "Scenario: drift is repaired\n\tGiven\tdrift started\n\tWhen\talarm\n\tThen\trepair",
			WithinMS: 1500},
		{At: at(1200), Do: "config", On: "#0", File: "/etc/login.defs", Key: "ENCRYPT_METHOD", Value: "SHA512"},
		{At: at(2000), Expect: "repairs", Op: "==", Num: 1},
		{At: at(2000), Expect: "compliance", Op: "==", Num: 1},
	})
}

func TestDriftScenarioBothModes(t *testing.T) {
	for _, push := range []bool{false, true} {
		res, err := Run(driftSpec(), Options{Push: push})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("push=%v:\n%s", push, res.Report())
		}
		if res.Alarms != 1 || res.Repairs != 1 {
			t.Fatalf("push=%v: alarms=%d repairs=%d, want 1/1", push, res.Alarms, res.Repairs)
		}
		if res.FinalCompliance != 1 {
			t.Fatalf("push=%v: final compliance %v", push, res.FinalCompliance)
		}
		if len(res.FinalState) != 4*8 {
			t.Fatalf("push=%v: %d verdicts, want 32", push, len(res.FinalState))
		}
	}
}

// TestDeterminism is the satellite check: identical spec and seed yield
// byte-identical reports and event schedules in both modes. The spec
// deliberately mixes churn, membership and connectivity mutations. Run
// with -race in CI to catch nondeterminism from unsynchronized sharing.
func TestDeterminism(t *testing.T) {
	sp := testSpec("det", 6, 5, []Step{
		{At: at(100), Do: "signal", Signal: "drift started", Num: 1},
		{At: at(100), Do: "config", On: "web#0", File: "/etc/login.defs", Key: "ENCRYPT_METHOD", Value: "MD5"},
		{At: at(300), Do: "join", Class: "db"},
		{At: at(400), Do: "churn", Events: 5},
		{At: at(600), Do: "flap", On: "web", Service: "web-svc-00"},
		{At: at(800), Do: "down", On: "web#1"},
		{At: at(1000), Do: "up", On: "web#1"},
		{At: at(1200), Do: "config", On: "web#0", File: "/etc/login.defs", Key: "ENCRYPT_METHOD", Value: "SHA512"},
		{At: at(1600), Expect: "compliance", Op: ">", Num: 0},
	})
	for _, push := range []bool{false, true} {
		a, err := Run(sp, Options{Push: push})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sp, Options{Push: push})
		if err != nil {
			t.Fatal(err)
		}
		if a.Report() != b.Report() {
			t.Fatalf("push=%v: reports differ:\n--- a ---\n%s--- b ---\n%s", push, a.Report(), b.Report())
		}
		if !reflect.DeepEqual(a.Schedule, b.Schedule) {
			t.Fatalf("push=%v: schedules differ", push)
		}
		if !reflect.DeepEqual(a.FinalState, b.FinalState) {
			t.Fatalf("push=%v: final states differ", push)
		}
	}
	if msg := Oracle(sp, Options{}); msg != "" {
		t.Fatalf("cross-mode divergence: %s", msg)
	}
}

func TestFaultsAndHeal(t *testing.T) {
	sp := testSpec("faults", 3, 9, []Step{
		{At: at(300), Do: "faults", On: "#0", FailFirst: 1},
		{At: at(1000), Expect: "verdict", On: "#0", Finding: "V-219157", Status: "incomplete"},
		{At: at(1000), Expect: "alarms", Op: "==", Num: 8},
		{At: at(1000), Expect: "compliance", Op: "<", Num: 1},
		{At: at(1300), Do: "heal", On: "#0"},
		{At: at(2000), Expect: "repairs", Op: "==", Num: 8},
		{At: at(2000), Expect: "compliance", Op: "==", Num: 1},
	})
	for _, push := range []bool{false, true} {
		res, err := Run(sp, Options{Push: push})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("push=%v:\n%s", push, res.Report())
		}
	}
}

// TestVerifyReadsOracle pins the post-run declared-reads oracle: on a
// pristine catalogue the run is clean; on a fleet left with a
// fault-wrapped catalogue (the wrapper drops the KeyReader surface) the
// oracle reports advisory unlocalized findings without failing the run
// — only undeclared reads are fatal.
func TestVerifyReadsOracle(t *testing.T) {
	clean := testSpec("vr-clean", 2, 3, []Step{
		{At: at(100), Do: "config", On: "#0", File: "/etc/login.defs", Key: "ENCRYPT_METHOD", Value: "MD5"},
		{At: at(600), Expect: "compliance", Op: "<", Num: 1},
	})
	for _, push := range []bool{false, true} {
		res, err := Run(clean, Options{Push: push, VerifyReads: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("push=%v:\n%s", push, res.Report())
		}
		if len(res.ReadViolations) != 0 {
			t.Fatalf("push=%v: clean fleet reported %v", push, res.ReadViolations)
		}
	}

	faulty := testSpec("vr-faulty", 2, 3, []Step{
		{At: at(300), Do: "faults", On: "#0", FailFirst: 1},
		{At: at(900), Expect: "compliance", Op: "<=", Num: 1},
	})
	res, err := Run(faulty, Options{VerifyReads: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FatalReadViolations != 0 {
		t.Fatalf("fault wrappers must stay advisory:\n%s", res.Report())
	}
	if res.Failed() {
		t.Fatalf("advisory violations failed the run:\n%s", res.Report())
	}
	advisory := false
	for _, v := range res.ReadViolations {
		if strings.Contains(v, "unlocalized") {
			advisory = true
		}
	}
	if !advisory {
		t.Fatalf("fault-wrapped catalogue produced no unlocalized advisory: %v", res.ReadViolations)
	}
}

func TestUnreachableHostDegradation(t *testing.T) {
	sp := testSpec("outage", 3, 21, []Step{
		{At: at(300), Do: "down", On: "#1"},
		// A mutation against the down host is skipped, not fatal.
		{At: at(400), Do: "config", On: "#1", File: "/etc/f", Key: "k", Value: "v"},
		{At: at(1000), Expect: "degraded", On: "#1"},
		{At: at(1000), Expect: "alarms", Op: "==", Num: 8},
		{At: at(1200), Do: "up", On: "#1"},
		{At: at(2000), Expect: "degraded", On: "#1", Value: "false"},
		{At: at(2000), Expect: "repairs", Op: "==", Num: 8},
		{At: at(2000), Expect: "compliance", Op: "==", Num: 1},
	})
	for _, push := range []bool{false, true} {
		res, err := Run(sp, Options{Push: push})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("push=%v:\n%s", push, res.Report())
		}
		if !res.Steps[1].Skipped {
			t.Fatalf("push=%v: mutation on down host not skipped: %+v", push, res.Steps[1])
		}
		if !strings.Contains(res.Steps[1].Detail, "unreachable") {
			t.Fatalf("push=%v: skip detail %q", push, res.Steps[1].Detail)
		}
	}
}

func TestVacuousGAFailsStep(t *testing.T) {
	sp := testSpec("vacuous", 2, 3, []Step{
		{At: at(200), Do: "flap", On: "#0", Service: "web-svc-00"},
		{At: at(500), Expect: "ga", GA: "GA never: when missing_signal then failing > 0 within 100 ms"},
	})
	res, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("vacuous GA passed:\n%s", res.Report())
	}
	if f := res.Failures(); !strings.Contains(f[0].Detail, "VACUOUS") {
		t.Fatalf("failure detail %q", f[0].Detail)
	}
}

func TestReportRendersProvenance(t *testing.T) {
	sp := testSpec("render", 2, 3, []Step{
		{At: at(200), Do: "install", On: "#0", Package: "nis"},
		{At: at(700), Expect: "alarms", Op: "==", Num: 0}, // wrong on purpose
	})
	res, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, want := range []string{"scenario render [sweep]: FAIL", "install", "FAIL #1", "alarms 1 == 0", "final:"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestShrinkMinimizes verifies the fuzzer's reducer: an impossible
// assertion buried under ten noise mutations shrinks to the single
// failing step.
func TestShrinkMinimizes(t *testing.T) {
	var steps []Step
	for i := 0; i < 10; i++ {
		steps = append(steps, Step{
			At: at(100 * (i + 1)), Do: "config", On: "#0",
			File: "/etc/web/conf-00", Key: "key-00", Value: string(rune('a' + i)),
		})
	}
	steps = append(steps, Step{At: at(1100), Expect: "compliance", Op: ">", Num: 2})
	sp := testSpec("shrinkme", 3, 17, steps)

	pred := func(c Spec) string {
		res, err := Run(c, Options{})
		if err != nil {
			return ""
		}
		if res.Failed() {
			return res.Failures()[0].Detail
		}
		return ""
	}
	if pred(sp) == "" {
		t.Fatal("seed spec does not fail")
	}
	min := Shrink(sp, pred)
	if len(min.Steps) != 1 {
		t.Fatalf("shrunk to %d steps, want 1: %+v", len(min.Steps), min.Steps)
	}
	if min.Steps[0].Expect != "compliance" {
		t.Fatalf("wrong surviving step: %+v", min.Steps[0])
	}
	if min.Steps[0].At != at(1100) {
		t.Fatalf("surviving step lost its instant: %v", min.Steps[0].At)
	}
}

func TestFuzzSmoke(t *testing.T) {
	fr := Fuzz(10, 1, Options{})
	if fr.Failed() {
		t.Fatalf("fuzz divergence:\n%s", fr)
	}
	if fr.Iterations != 10 {
		t.Fatalf("iterations %d", fr.Iterations)
	}
}
