// Package integration_test exercises the VeriDevOps chains end-to-end
// across module boundaries: the prevention chain (NL -> pattern -> formula
// + observer -> model checking -> tests) and the protection chain (same
// requirement -> live monitor / G/A over logs / catalogue enforcement).
package integration_test

import (
	"math/rand"
	"testing"

	"veridevops/internal/automata"
	"veridevops/internal/core"
	"veridevops/internal/extract"
	"veridevops/internal/gwt"
	"veridevops/internal/host"
	"veridevops/internal/mc"
	"veridevops/internal/monitor"
	"veridevops/internal/nalabs"
	"veridevops/internal/resa"
	"veridevops/internal/stig"
	"veridevops/internal/tctl"
	"veridevops/internal/tears"
	"veridevops/internal/temporal"
	"veridevops/internal/trace"
)

// The one-requirement pipeline: a boilerplate response requirement is
// formalised once and then verified three independent ways (model
// checking, offline trace evaluation, live monitoring). All three must
// agree, for both a conforming and a violating system.
func TestOneRequirementThreeVerifiers(t *testing.T) {
	const text = "When a is detected, the system shall raise c within 20 ms."
	ex := extract.Extract(text)
	if ex.Confidence == extract.None {
		t.Fatalf("extraction failed for %q", text)
	}
	// Normalise proposition names for the plant: a, c.
	pat := ex.Pattern
	pat.P = tctl.Prop{Name: "a"}
	pat.S = tctl.Prop{Name: "c"}
	formula, err := pat.Compile()
	if err != nil {
		t.Fatal(err)
	}
	obs, err := automata.FromPattern(pat)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		period  int64 // plant period; c follows a after 2*period
		conform bool
	}{
		{"conforming", 10, true}, // latency 20 <= 20
		{"violating", 15, false}, // latency 30 > 20
	} {
		// 1. Model checking (prevention).
		plant := automata.CyclicPlant("plant", 4, []string{"a", "b", "c", "d"}, tc.period)
		holds, _, _, err := mc.NewChecker(automata.MustNetwork(plant, obs)).CheckErrorFree()
		if err != nil {
			t.Fatal(err)
		}
		if holds != tc.conform {
			t.Errorf("%s: model checker says %v, want %v", tc.name, holds, tc.conform)
		}

		// 2. Offline trace evaluation (audit): replay the plant's
		// behaviour as a trace.
		tr := trace.New()
		for i := 0; i < 10; i++ {
			base := trace.Time(4*i) * tc.period
			trace.GenPulse(tr, "a", base+tc.period, 1)
			trace.GenPulse(tr, "c", base+3*tc.period, 1)
		}
		tr.SetEnd(45 * tc.period)
		if got := tctl.Holds(tr, formula); got != tc.conform {
			t.Errorf("%s: offline evaluation says %v, want %v", tc.name, got, tc.conform)
		}

		// 3. Live monitor (protection) over the same trace in virtual
		// time.
		clk := temporal.NewSimClock()
		opt := temporal.Options{Clock: clk, Period: 1, Boundary: int(40 * tc.period)}
		mon := temporal.NewGlobalResponseTimed(
			temporal.TraceProbe(tr, "a", clk),
			temporal.TraceProbe(tr, "c", clk), 20, opt)
		live := mon.Check() == core.CheckPass
		if live != tc.conform {
			t.Errorf("%s: live monitor says %v, want %v", tc.name, live, tc.conform)
		}

		// 4. The same requirement as a TEARS G/A.
		ga, err := tears.ParseGA("GA r: when a then c within 20 ms")
		if err != nil {
			t.Fatal(err)
		}
		if v := tears.Evaluate(tr, ga); v.Passed() != tc.conform {
			t.Errorf("%s: G/A evaluation says %v, want %v", tc.name, v.Passed(), tc.conform)
		}
	}
}

// Requirements document -> smells -> boilerplates -> monitors over a
// drifting host, closing the loop through the STIG catalogue.
func TestDocumentToProtectionLoop(t *testing.T) {
	doc := `The host shall not run the nis package.
While hardening is required, the host shall keep aide installed.`

	// Smell check: both requirements must be clean enough to formalise.
	an := nalabs.NewAnalyzer()
	for i, s := range extract.SplitSentences(doc) {
		if a := an.Analyze(nalabs.Requirement{ID: string(rune('A' + i)), Text: s}); a.Has(nalabs.SmellNonImperative) {
			t.Errorf("sentence %d unexpectedly non-imperative: %v", i, a.Smells)
		}
	}

	// The first parses as a prohibition boilerplate.
	r, err := resa.Parse("The host shall not run the nis package.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != resa.Prohibition {
		t.Fatalf("Kind = %v", r.Kind)
	}

	// Bind the formalised prohibition to the concrete STIG requirement
	// and run protection over a drifting host.
	h := host.NewUbuntu1804()
	cat := stig.UbuntuCatalog(h)
	cat.Run(core.CheckAndEnforce)

	s := monitor.NewScheduler(5)
	s.AutoEnforce = true
	s.WatchCatalog(cat)
	rng := rand.New(rand.NewSource(21))
	s.Run(600, []monitor.TimedAction{
		{At: 100, Do: func() { h.Install("nis", "1") }},
		{At: 300, Do: func() { host.DriftLinux(h, 4, rng) }},
	})
	if len(s.Alarms()) == 0 {
		t.Fatal("protection must raise alarms for the injected drift")
	}
	if rep := cat.Run(core.CheckOnly); rep.Compliance() != 1 {
		t.Errorf("auto-enforcement must restore compliance:\n%s", rep)
	}
}

// Scenario -> model -> abstract tests -> scripts, and the same scenario ->
// G/A -> log evaluation: the two D2.7 test-specification styles from one
// source.
func TestScenarioToTestsAndAssertions(t *testing.T) {
	feature := `
Scenario: intrusion response
  When intrusion detected
  Then alarm raised
`
	scs, err := gwt.ParseScenarios(feature)
	if err != nil {
		t.Fatal(err)
	}

	// Test-generation branch.
	model, err := gwt.ToModel(scs)
	if err != nil {
		t.Fatal(err)
	}
	tcs := gwt.AllEdges(model)
	if gwt.EdgeCoverage(model, tcs) != 1 {
		t.Error("scenario model must be fully coverable")
	}
	gen, err := gwt.NewTestGenerator(nil, nil, "do %q")
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := gen.Concretize(tcs)
	if err != nil || len(scripts) == 0 {
		t.Fatalf("concretisation failed: %v", err)
	}

	// Assertion branch.
	gas, errs := tears.FromScenarios(scs, 30)
	if len(errs) != 0 || len(gas) != 1 {
		t.Fatalf("bridge failed: %v", errs)
	}
	tr := trace.New()
	trace.GenPulse(tr, "intrusion_detected", 50, 2)
	trace.GenPulse(tr, "alarm_raised", 70, 2)
	tr.SetEnd(200)
	if v := tears.Evaluate(tr, gas[0]); !v.Passed() {
		t.Errorf("G/A from scenario should pass on conforming log: %+v", v)
	}
}

// Parallel audit over a real simulated host: the host's internal locking
// makes concurrent checks safe, and the parallel report must agree with
// the sequential one (run under -race in CI).
func TestParallelCatalogueOnSimulatedHost(t *testing.T) {
	h := host.NewUbuntu1804()
	cat := stig.UbuntuCatalog(h)
	rng := rand.New(rand.NewSource(33))
	host.DriftLinux(h, 6, rng)

	seq := cat.Run(core.CheckOnly)
	par := cat.RunParallel(core.CheckOnly, 4)
	if seq.Compliance() != par.Compliance() {
		t.Errorf("parallel audit diverged: %v vs %v", seq.Compliance(), par.Compliance())
	}
	rep := cat.RunParallel(core.CheckAndEnforce, 4)
	if rep.Compliance() != 1 {
		t.Errorf("parallel enforcement incomplete:\n%s", rep)
	}
}

// Full-catalogue churn test: repeated drift/enforce cycles across both
// host types never wedge the catalogue (idempotence + convergence under
// failure injection).
func TestCatalogueChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := host.NewUbuntu1804()
	w := host.NewWindows10()
	lin := stig.UbuntuCatalog(h)
	win := stig.Win10Catalog(w)
	for round := 0; round < 25; round++ {
		host.DriftLinux(h, rng.Intn(6), rng)
		host.DriftWindows(w, rng.Intn(4), rng)
		if rep := lin.Run(core.CheckAndEnforce); rep.Compliance() != 1 {
			t.Fatalf("round %d: linux compliance %.2f", round, rep.Compliance())
		}
		if rep := win.Run(core.CheckAndEnforce); rep.Compliance() != 1 {
			t.Fatalf("round %d: windows compliance %.2f", round, rep.Compliance())
		}
	}
}
