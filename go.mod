module veridevops

go 1.22
